//===- strategy_parity_test.cpp - Refactor bit-identity guarantees --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The SearchStrategy / EvaluationService split must not move a single
/// bit of the guided walk: the same selected design, visit table, walk
/// trace, accounting, and decisionDigest() — across every seed kernel,
/// both platforms, and 1/4/8 worker threads — whether the walk runs
/// through the DesignSpaceExplorer façade, runWithStrategy("guided"), or
/// a bare strategy over an EvaluationService.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Core/SearchStrategy.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

struct TracedRun {
  ExplorationResult Result;
  std::shared_ptr<TraceRecorder> Recorder;
};

ExplorerOptions makeOptions(const TargetPlatform &Platform, unsigned Threads,
                            std::shared_ptr<TraceRecorder> Trace) {
  ExplorerOptions Opts;
  Opts.Platform = Platform;
  Opts.NumThreads = Threads;
  Opts.Trace = std::move(Trace);
  return Opts;
}

TracedRun runFacade(const std::string &Name, const TargetPlatform &Platform,
                    unsigned Threads) {
  auto Trace = std::make_shared<TraceRecorder>();
  Trace->setEnabled(true);
  Kernel K = buildKernel(Name);
  DesignSpaceExplorer Ex(K, makeOptions(Platform, Threads, Trace));
  return {Ex.run(), Trace};
}

TracedRun runStrategy(const std::string &Name, const TargetPlatform &Platform,
                      unsigned Threads) {
  auto Trace = std::make_shared<TraceRecorder>();
  Trace->setEnabled(true);
  Kernel K = buildKernel(Name);
  Expected<ExplorationResult> R =
      exploreWithStrategy(K, makeOptions(Platform, Threads, Trace), "guided");
  EXPECT_TRUE(static_cast<bool>(R));
  return {*R, Trace};
}

void expectIdentical(const ExplorationResult &A, const ExplorationResult &B) {
  EXPECT_EQ(A.Selected, B.Selected);
  EXPECT_EQ(A.SelectedEstimate.Cycles, B.SelectedEstimate.Cycles);
  EXPECT_EQ(A.SelectedEstimate.Slices, B.SelectedEstimate.Slices);
  EXPECT_EQ(A.BaselineEstimate.Cycles, B.BaselineEstimate.Cycles);
  EXPECT_EQ(A.SelectedFits, B.SelectedFits);
  EXPECT_EQ(A.Degraded, B.Degraded);
  EXPECT_EQ(A.EvaluationsUsed, B.EvaluationsUsed);
  EXPECT_EQ(A.Strategy, B.Strategy);
  EXPECT_EQ(A.Trace, B.Trace);
  ASSERT_EQ(A.Visited.size(), B.Visited.size());
  for (size_t I = 0; I != A.Visited.size(); ++I) {
    EXPECT_EQ(A.Visited[I].U, B.Visited[I].U);
    EXPECT_EQ(A.Visited[I].Role, B.Visited[I].Role);
    EXPECT_EQ(A.Visited[I].Estimate.Cycles, B.Visited[I].Estimate.Cycles);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Guided parity: façade vs strategy entry point, at every thread count.
//===----------------------------------------------------------------------===//

TEST(StrategyParity, FacadeAndStrategyEntryPointsAreBitIdentical) {
  for (const KernelSpec &Spec : paperKernels())
    for (bool Pipelined : {true, false})
      for (unsigned Threads : {1u, 4u, 8u}) {
        SCOPED_TRACE(Spec.Name + (Pipelined ? "/pipe" : "/nonpipe") +
                     "/threads=" + std::to_string(Threads));
        TargetPlatform P = Pipelined
                               ? TargetPlatform::wildstarPipelined()
                               : TargetPlatform::wildstarNonPipelined();
        TracedRun Facade = runFacade(Spec.Name, P, Threads);
        TracedRun Strategy = runStrategy(Spec.Name, P, Threads);
        expectIdentical(Facade.Result, Strategy.Result);
        EXPECT_EQ(Facade.Recorder->decisionDigest(),
                  Strategy.Recorder->decisionDigest());
      }
}

TEST(StrategyParity, GuidedDigestIsIdenticalAcrossThreadCounts) {
  for (const KernelSpec &Spec : paperKernels())
    for (bool Pipelined : {true, false}) {
      SCOPED_TRACE(Spec.Name + (Pipelined ? "/pipelined" : "/nonpipelined"));
      TargetPlatform P = Pipelined ? TargetPlatform::wildstarPipelined()
                                   : TargetPlatform::wildstarNonPipelined();
      TracedRun Seq = runStrategy(Spec.Name, P, 1);
      TracedRun Par4 = runStrategy(Spec.Name, P, 4);
      TracedRun Par8 = runStrategy(Spec.Name, P, 8);
      expectIdentical(Seq.Result, Par4.Result);
      expectIdentical(Seq.Result, Par8.Result);
      EXPECT_EQ(Seq.Recorder->decisionDigest(),
                Par4.Recorder->decisionDigest());
      EXPECT_EQ(Seq.Recorder->decisionDigest(),
                Par8.Recorder->decisionDigest());
    }
}

TEST(StrategyParity, RunWithStrategyGuidedMatchesRun) {
  for (const KernelSpec &Spec : paperKernels()) {
    SCOPED_TRACE(Spec.Name);
    Kernel K = buildKernel(Spec.Name);
    ExplorationResult ViaRun = DesignSpaceExplorer(K, {}).run();
    Expected<ExplorationResult> ViaName =
        DesignSpaceExplorer(K, {}).runWithStrategy("guided");
    ASSERT_TRUE(static_cast<bool>(ViaName));
    expectIdentical(ViaRun, *ViaName);
  }
}

TEST(StrategyParity, GuidedResultIsStampedWithItsStrategy) {
  ExplorationResult R = DesignSpaceExplorer(buildKernel("FIR"), {}).run();
  EXPECT_EQ(R.Strategy, "guided");
  EXPECT_NE(R.toString().find("strategy=guided"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The exhaustive/random baselines survived the move onto strategies.
//===----------------------------------------------------------------------===//

TEST(StrategyParity, ExhaustiveFreeFunctionMatchesStrategy) {
  Kernel K = buildKernel("MM");
  ExplorationResult Free = exploreExhaustive(K, {});
  Expected<ExplorationResult> Named = exploreWithStrategy(K, {}, "exhaustive");
  ASSERT_TRUE(static_cast<bool>(Named));
  expectIdentical(Free, *Named);
  // Exhaustive visits every divisor-valid candidate, far more than any
  // guided walk but still far fewer than the full Cartesian space.
  EXPECT_GT(Free.Visited.size(), 10u);
  EXPECT_LE(Free.Visited.size(), Free.FullSpaceSize);
}

TEST(StrategyParity, RandomFreeFunctionMatchesDefaultStrategy) {
  Kernel K = buildKernel("PAT");
  // The registry's "random" uses the documented defaults (24 samples,
  // seed 2002); the free function with the same parameters must agree.
  ExplorationResult Free = exploreRandom(K, {}, 24, 2002);
  Expected<ExplorationResult> Named = exploreWithStrategy(K, {}, "random");
  ASSERT_TRUE(static_cast<bool>(Named));
  expectIdentical(Free, *Named);
}

//===----------------------------------------------------------------------===//
// Every registered strategy is runnable by name over the seed kernels.
//===----------------------------------------------------------------------===//

TEST(StrategyParity, EveryRegisteredStrategyRunsOnEveryPaperKernel) {
  for (const std::string &Name : StrategyRegistry::instance().names())
    for (const KernelSpec &Spec : paperKernels()) {
      SCOPED_TRACE(Name + "/" + Spec.Name);
      Kernel K = buildKernel(Spec.Name);
      Expected<ExplorationResult> R = exploreWithStrategy(K, {}, Name);
      ASSERT_TRUE(static_cast<bool>(R));
      EXPECT_EQ(R->Strategy, Name);
      EXPECT_FALSE(R->Visited.empty());
      EXPECT_TRUE(R->SelectedFits);
      EXPECT_LE(R->SelectedEstimate.Slices,
                ExplorerOptions{}.Platform.CapacitySlices);
    }
}
