//===- guidedtile_test.cpp - Multi-dimensional refinement strategy --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The "guided+tile" strategy: the paper's guided walk followed by an
/// interchange/tile refinement around the unroll-only optimum. The
/// headline acceptance check is JAC, where a §5.4 tile strictly beats
/// the best unroll-only design; the rest pins the strategy's contract —
/// never worse than guided, refusal trace lines when nothing improves,
/// budget accounting across both stages, and deterministic results.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

ExplorationResult runStrategy(const std::string &Kernel,
                              const std::string &Strategy,
                              ExplorerOptions Opts = {}) {
  Expected<ExplorationResult> R =
      exploreWithStrategy(buildKernel(Kernel), Opts, Strategy);
  EXPECT_TRUE(static_cast<bool>(R)) << R.status().toString();
  return *R;
}

} // namespace

TEST(GuidedTile, JacTileStrictlyBeatsTheUnrollOnlyOptimum) {
  // The demonstration the multi-dimensional space exists for: on JAC the
  // guided walk's unroll-only optimum is memory bound, and strip-mining
  // localizes the stencil reuse enough to cut cycles outright.
  ExplorationResult UnrollOnly = runStrategy("JAC", "guided");
  ExplorationResult Refined = runStrategy("JAC", "guided+tile");

  EXPECT_LT(Refined.SelectedEstimate.Cycles, UnrollOnly.SelectedEstimate.Cycles);
  EXPECT_FALSE(Refined.SelectedPoint.isUnrollOnly());
  EXPECT_TRUE(Refined.SelectedPoint.Tile.has_value());
  EXPECT_TRUE(Refined.SelectedFits);
  EXPECT_NE(Refined.Trace.find("tile refinement: "), std::string::npos);
  EXPECT_NE(Refined.Trace.find("beats the unroll-only optimum"),
            std::string::npos);
  // The winning point's unroll vector is recorded in Selected (one entry
  // deeper than the nest, since a tile splits one loop into two).
  EXPECT_EQ(Refined.Selected, Refined.SelectedPoint.Unroll);
}

TEST(GuidedTile, NeverWorseThanGuidedOnAnyPaperKernel) {
  for (const KernelSpec &Spec : paperKernels())
    for (bool Pipelined : {true, false}) {
      SCOPED_TRACE(Spec.Name + (Pipelined ? "/pipe" : "/nonpipe"));
      ExplorerOptions Opts;
      Opts.Platform = Pipelined ? TargetPlatform::wildstarPipelined()
                                : TargetPlatform::wildstarNonPipelined();
      ExplorationResult Guided = runStrategy(Spec.Name, "guided", Opts);
      ExplorationResult Refined = runStrategy(Spec.Name, "guided+tile", Opts);
      EXPECT_EQ(Refined.Strategy, "guided+tile");
      // Refinement only ever upgrades the selection.
      EXPECT_LE(Refined.SelectedEstimate.Cycles,
                Guided.SelectedEstimate.Cycles);
      if (Refined.SelectedEstimate.Cycles == Guided.SelectedEstimate.Cycles &&
          Refined.SelectedPoint.isUnrollOnly())
        EXPECT_EQ(Refined.Selected, Guided.Selected);
      // The refined walk visits at least the guided walk's designs.
      EXPECT_GE(Refined.Visited.size(), Guided.Visited.size());
      EXPECT_TRUE(Refined.SelectedFits);
    }
}

TEST(GuidedTile, ExplainsWhenNoRefinementWins) {
  // FIR's pipelined optimum saturates the fetch rate; no interchange or
  // tile improves it and the trace must say so instead of staying mute.
  ExplorationResult R = runStrategy("FIR", "guided+tile");
  ASSERT_TRUE(R.SelectedPoint.isUnrollOnly());
  EXPECT_NE(R.Trace.find("tile refinement:"), std::string::npos);
  EXPECT_NE(R.Trace.find("beats the unroll-only optimum"), std::string::npos);
}

TEST(GuidedTile, DeterministicAcrossRuns) {
  ExplorationResult A = runStrategy("JAC", "guided+tile");
  ExplorationResult B = runStrategy("JAC", "guided+tile");
  EXPECT_EQ(A.Selected, B.Selected);
  EXPECT_EQ(A.SelectedPoint, B.SelectedPoint);
  EXPECT_EQ(A.SelectedEstimate.Cycles, B.SelectedEstimate.Cycles);
  EXPECT_EQ(A.Trace, B.Trace);
  EXPECT_EQ(A.EvaluationsUsed, B.EvaluationsUsed);
  ASSERT_EQ(A.Visited.size(), B.Visited.size());
  for (size_t I = 0; I != A.Visited.size(); ++I)
    EXPECT_EQ(A.Visited[I].Point, B.Visited[I].Point);
}

TEST(GuidedTile, HonorsTheEvaluationBudgetAcrossBothStages) {
  ExplorerOptions Tight;
  Tight.MaxEvaluations = 8;
  ExplorationResult R = runStrategy("MM", "guided+tile", Tight);
  EXPECT_LE(R.EvaluationsUsed, 8u);
  // A budget stop during refinement is surfaced, not swallowed.
  if (R.EvaluationsUsed == 8u && R.Degraded) {
    bool SawStop = false;
    for (const EvaluationFailure &F : R.Failures)
      SawStop |= F.Attempts == 0;
    EXPECT_TRUE(SawStop);
  }
}

TEST(GuidedTile, RefinementRolesAreLabelled) {
  ExplorationResult R = runStrategy("JAC", "guided+tile");
  bool SawTile = false, SawInterchangeOrTile = false;
  for (const EvaluatedDesign &D : R.Visited) {
    if (D.Role == "tile") {
      SawTile = true;
      EXPECT_TRUE(D.Point.Tile.has_value());
    }
    if (D.Role == "interchange" || D.Role == "tile") {
      SawInterchangeOrTile = true;
      EXPECT_FALSE(D.Point.isUnrollOnly());
    }
  }
  EXPECT_TRUE(SawTile);
  EXPECT_TRUE(SawInterchangeOrTile);
}
