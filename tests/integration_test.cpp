//===- integration_test.cpp - Whole-system integration tests --------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The DEFACTO flow end to end: C source -> parse -> explore -> transform
/// at the selected design -> verify semantics -> emit VHDL -> estimate vs
/// implementation model. Exercises every library together.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/HLS/PlaceRoute.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/VHDL/VhdlEmitter.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

class FullFlow : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(FullFlow, SourceToSelectedDesignToVhdl) {
  const char *Name = GetParam();

  // 1. Front end.
  const KernelSpec *Spec = findKernelSpec(Name);
  ASSERT_NE(Spec, nullptr);
  DiagnosticEngine Diags;
  std::optional<Kernel> Parsed = parseKernel(Spec->Source, Name, Diags);
  ASSERT_TRUE(Parsed.has_value()) << Diags.toString();
  ASSERT_TRUE(isKernelValid(*Parsed));
  auto Reference = simulate(*Parsed, 20260705);

  // 2. Design space exploration.
  ExplorerOptions Opts;
  Opts.Platform = TargetPlatform::wildstarPipelined();
  DesignSpaceExplorer Ex(*Parsed, Opts);
  ExplorationResult R = Ex.run();
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
  EXPECT_GE(R.speedup(), 1.0);

  // 3. Materialize the selected design and verify semantics.
  TransformOptions TO;
  TO.Unroll = R.Selected;
  TO.Layout.NumMemories = Opts.Platform.NumMemories;
  TransformResult Design = applyPipeline(*Parsed, TO);
  EXPECT_TRUE(isKernelValid(Design.K));
  EXPECT_EQ(simulate(Design.K, 20260705), Reference);

  // 4. Back end.
  std::string V = emitVhdl(Design.K);
  EXPECT_EQ(checkVhdlStructure(V), "");
  EXPECT_NE(V.find("entity defacto_"), std::string::npos);

  // 5. Implementation model agrees with the estimate's cycle count and
  //    the selected design routes.
  ImplementationResult Impl =
      placeAndRoute(R.SelectedEstimate, Opts.Platform);
  EXPECT_EQ(Impl.Cycles, R.SelectedEstimate.Cycles);
  EXPECT_TRUE(Impl.Routable);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, FullFlow,
                         ::testing::Values("FIR", "MM", "PAT", "JAC",
                                           "SOBEL"));

TEST(Integration, CustomKernelFromSource) {
  // A downstream user's kernel, written from scratch: dot product with a
  // scaling table.
  const char *Source = "int X[64];\n"
                       "int Y[64];\n"
                       "int W[16];\n"
                       "int R[64];\n"
                       "for (i = 0; i < 64; i++)\n"
                       "  for (j = 0; j < 16; j++)\n"
                       "    R[i] = R[i] + X[i] * W[j] + Y[i];\n";
  DiagnosticEngine Diags;
  std::optional<Kernel> K = parseKernel(Source, "dotscale", Diags);
  ASSERT_TRUE(K.has_value()) << Diags.toString();
  auto Reference = simulate(*K, 1);

  ExplorerOptions Opts;
  ExplorationResult R = DesignSpaceExplorer(*K, Opts).run();
  EXPECT_GE(R.speedup(), 1.0);
  EXPECT_LT(R.fractionSearched(), 0.05);

  TransformOptions TO;
  TO.Unroll = R.Selected;
  TransformResult Design = applyPipeline(*K, TO);
  EXPECT_EQ(simulate(Design.K, 1), Reference);
}

TEST(Integration, EstimatesAreDeterministic) {
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Opts;
  ExplorationResult A = DesignSpaceExplorer(FIR, Opts).run();
  ExplorationResult B = DesignSpaceExplorer(FIR, Opts).run();
  EXPECT_EQ(A.Selected, B.Selected);
  EXPECT_EQ(A.SelectedEstimate.Cycles, B.SelectedEstimate.Cycles);
  EXPECT_EQ(A.SelectedEstimate.Slices, B.SelectedEstimate.Slices);
  EXPECT_EQ(A.Visited.size(), B.Visited.size());
}
