//===- pipeline_parity_test.cpp - Pass-pipeline bit-identity gate ---------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The pass-pipeline refactor must not move a single bit of the default
/// transformation sequence. This suite replicates the pre-refactor
/// hard-coded pipeline (strip-mine -> unroll-and-jam -> normalize ->
/// scalar replacement -> peeling -> folding -> data layout, inlined here
/// from the legacy Pipeline.cpp) and checks applyPipeline against it:
/// identical printed IR and identical per-pass statistics across the
/// paper kernels and a grid of option combinations. It then proves the
/// explicit default pipeline text equals the implicit default, and that
/// exploration through an explicit text produces the same winners and
/// decision digest as the legacy path at 1 and 8 threads.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/SearchStrategy.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Transforms/ConstantFolding.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/PassRegistry.h"
#include "defacto/Transforms/Pipeline.h"
#include "defacto/Transforms/Tiling.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

/// The pre-refactor pipeline, verbatim: what runOnNormalized +
/// finishPipeline did before the sequence became a pass pipeline.
TransformResult legacyPipeline(const Kernel &Source,
                               const TransformOptions &Opts) {
  Kernel K = Source.clone();
  normalizeLoops(K);

  if (Opts.StripMine) {
    ForStmt *Top = K.topLoop();
    if (Top) {
      std::vector<ForStmt *> Nest = perfectNest(Top);
      unsigned Pos = Opts.StripMine->first;
      if (Pos < Nest.size())
        stripMine(K, Nest[Pos]->loopId(), Opts.StripMine->second);
    }
  }

  bool UnrollApplied = unrollAndJam(K, Opts.Unroll);
  normalizeLoops(K);

  TransformResult Result(std::move(K));
  Result.UnrollApplied = UnrollApplied;
  Kernel &T = Result.K;

  if (Opts.EnableScalarReplacement)
    Result.SR = scalarReplace(T, Opts.SR);
  if (Opts.EnablePeeling)
    Result.Peeling = peelGuardedIterations(T);
  foldConstants(T.body());
  if (Opts.EnableDataLayout) {
    Expected<DataLayoutStats> Layout = applyDataLayout(T, Opts.Layout);
    if (!Layout) {
      Result.Error = Layout.status();
      Result.K = Source.clone();
      return Result;
    }
    Result.Layout = *Layout;
  }

  if (!isKernelValid(T)) {
    Result.Error = Status::error(
        ErrorCode::MalformedIR,
        "transformation pipeline produced an invalid kernel");
    Result.K = Source.clone();
  }
  return Result;
}

void expectIdenticalResults(const TransformResult &Legacy,
                            const TransformResult &Piped) {
  EXPECT_EQ(printKernel(Legacy.K), printKernel(Piped.K));
  EXPECT_EQ(Legacy.UnrollApplied, Piped.UnrollApplied);
  EXPECT_EQ(Legacy.Error.code(), Piped.Error.code());
  EXPECT_EQ(Legacy.SR.RegistersAllocated, Piped.SR.RegistersAllocated);
  EXPECT_EQ(Legacy.SR.ChainsCreated, Piped.SR.ChainsCreated);
  EXPECT_EQ(Legacy.SR.WindowsCreated, Piped.SR.WindowsCreated);
  EXPECT_EQ(Legacy.SR.LoadsRemoved, Piped.SR.LoadsRemoved);
  EXPECT_EQ(Legacy.SR.StoresRemoved, Piped.SR.StoresRemoved);
  EXPECT_EQ(Legacy.Peeling.LoopsPeeled, Piped.Peeling.LoopsPeeled);
  EXPECT_EQ(Legacy.Layout.ArraysDistributed, Piped.Layout.ArraysDistributed);
  EXPECT_EQ(Legacy.Layout.VirtualMemories, Piped.Layout.VirtualMemories);
}

/// Option grid: unroll shapes x strip-mine x pass toggles, enough to
/// exercise every pass both on and off.
std::vector<TransformOptions> optionGrid(const Kernel &K) {
  std::vector<TransformOptions> Grid;
  ForStmt *Top = const_cast<Kernel &>(K).topLoop();
  size_t Depth = Top ? perfectNest(Top).size() : 0;

  auto WithUnroll = [&](UnrollVector U) {
    TransformOptions O;
    O.Unroll = std::move(U);
    O.Layout.NumMemories = 8;
    return O;
  };

  Grid.push_back(WithUnroll({}));
  Grid.push_back(WithUnroll(UnrollVector(Depth, 2)));
  UnrollVector Mixed(Depth, 1);
  if (!Mixed.empty())
    Mixed.front() = 4;
  Grid.push_back(WithUnroll(Mixed));

  TransformOptions Tiled = WithUnroll(UnrollVector(Depth, 1));
  Tiled.StripMine = {0u, int64_t(4)};
  Grid.push_back(Tiled);

  TransformOptions NoSR = WithUnroll(UnrollVector(Depth, 2));
  NoSR.EnableScalarReplacement = false;
  Grid.push_back(NoSR);

  TransformOptions NoPeel = WithUnroll(UnrollVector(Depth, 2));
  NoPeel.EnablePeeling = false;
  Grid.push_back(NoPeel);

  TransformOptions NoLayout = WithUnroll(UnrollVector(Depth, 2));
  NoLayout.EnableDataLayout = false;
  Grid.push_back(NoLayout);

  TransformOptions Bare = WithUnroll(UnrollVector(Depth, 2));
  Bare.EnableScalarReplacement = false;
  Bare.EnablePeeling = false;
  Bare.EnableDataLayout = false;
  Grid.push_back(Bare);

  return Grid;
}

} // namespace

//===----------------------------------------------------------------------===//
// The pass pipeline reproduces the legacy hard-coded sequence bit for
// bit: printed IR and statistics, across kernels and option combos.
//===----------------------------------------------------------------------===//

TEST(PipelineParity, DefaultPipelineMatchesLegacySequence) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    std::vector<TransformOptions> Grid = optionGrid(K);
    for (size_t I = 0; I != Grid.size(); ++I) {
      SCOPED_TRACE(Spec.Name + "/option-combo=" + std::to_string(I));
      TransformResult Legacy = legacyPipeline(K, Grid[I]);
      TransformResult Piped = applyPipeline(K, Grid[I]);
      expectIdenticalResults(Legacy, Piped);
    }
  }
}

TEST(PipelineParity, ExtendedKernelsMatchToo) {
  for (const KernelSpec &Spec : extendedKernels()) {
    SCOPED_TRACE(Spec.Name);
    Kernel K = buildKernel(Spec.Name);
    TransformOptions Opts;
    ForStmt *Top = K.topLoop();
    Opts.Unroll = UnrollVector(Top ? perfectNest(Top).size() : 0, 2);
    Opts.Layout.NumMemories = 8;
    expectIdenticalResults(legacyPipeline(K, Opts), applyPipeline(K, Opts));
  }
}

//===----------------------------------------------------------------------===//
// Explicit default text == implicit default: the parser and registry do
// not perturb the sequence.
//===----------------------------------------------------------------------===//

TEST(PipelineParity, ExplicitDefaultTextMatchesImplicitDefault) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    for (const TransformOptions &Base : optionGrid(K)) {
      SCOPED_TRACE(Spec.Name);
      TransformOptions Explicit = Base;
      Explicit.Pipeline = defaultPipelineText();
      TransformResult Implicit = applyPipeline(K, Base);
      TransformResult Named = applyPipeline(K, Explicit);
      expectIdenticalResults(Implicit, Named);
    }
  }
}

TEST(PipelineParity, InterchangeVariantIsSelectedWhenInterchangeSet) {
  // With Interchange set and no explicit text, the default becomes the
  // interchange variant; spelling that variant out must be identical.
  Kernel K = buildKernel("MM");
  TransformOptions Base;
  Base.Unroll = {2, 2, 1};
  Base.Interchange = {1, 0, 2};
  Base.Layout.NumMemories = 8;
  TransformOptions Explicit = Base;
  Explicit.Pipeline = defaultPipelineTextWithInterchange();
  TransformResult Implicit = applyPipeline(K, Base);
  TransformResult Named = applyPipeline(K, Explicit);
  ASSERT_TRUE(Implicit.ok()) << Implicit.Error.toString();
  expectIdenticalResults(Implicit, Named);
}

//===----------------------------------------------------------------------===//
// Exploration through an explicit pipeline text: same winners, same
// decision digest as the legacy (implicit) path, sequential and 8-way.
//===----------------------------------------------------------------------===//

namespace {

struct TracedRun {
  ExplorationResult Result;
  std::shared_ptr<TraceRecorder> Recorder;
};

TracedRun runGuided(const std::string &Name, const TargetPlatform &Platform,
                    unsigned Threads, const std::string &Pipeline) {
  auto Trace = std::make_shared<TraceRecorder>();
  Trace->setEnabled(true);
  ExplorerOptions Opts;
  Opts.Platform = Platform;
  Opts.NumThreads = Threads;
  Opts.Trace = Trace;
  Opts.BaseTransforms.Pipeline = Pipeline;
  Kernel K = buildKernel(Name);
  Expected<ExplorationResult> R = exploreWithStrategy(K, Opts, "guided");
  EXPECT_TRUE(static_cast<bool>(R));
  return {*R, Trace};
}

} // namespace

TEST(PipelineParity, ExplorationDigestIdenticalUnderExplicitDefaultText) {
  for (const KernelSpec &Spec : paperKernels())
    for (bool Pipelined : {true, false})
      for (unsigned Threads : {1u, 8u}) {
        SCOPED_TRACE(Spec.Name + (Pipelined ? "/pipe" : "/nonpipe") +
                     "/threads=" + std::to_string(Threads));
        TargetPlatform P = Pipelined
                               ? TargetPlatform::wildstarPipelined()
                               : TargetPlatform::wildstarNonPipelined();
        TracedRun Implicit = runGuided(Spec.Name, P, Threads, "");
        TracedRun Explicit =
            runGuided(Spec.Name, P, Threads, defaultPipelineText());
        EXPECT_EQ(Implicit.Result.Selected, Explicit.Result.Selected);
        EXPECT_EQ(Implicit.Result.SelectedEstimate.Cycles,
                  Explicit.Result.SelectedEstimate.Cycles);
        EXPECT_EQ(Implicit.Result.SelectedEstimate.Slices,
                  Explicit.Result.SelectedEstimate.Slices);
        EXPECT_EQ(Implicit.Result.EvaluationsUsed,
                  Explicit.Result.EvaluationsUsed);
        EXPECT_EQ(Implicit.Result.Trace, Explicit.Result.Trace);
        EXPECT_EQ(Implicit.Recorder->decisionDigest(),
                  Explicit.Recorder->decisionDigest());
      }
}
