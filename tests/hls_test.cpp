//===- hls_test.cpp - Behavioral synthesis estimator tests ----------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/Estimator.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/HLS/PlaceRoute.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Transforms/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace defacto;

namespace {

SynthesisEstimate estimateAt(const char *Name, UnrollVector U,
                             const TargetPlatform &P) {
  Kernel K = buildKernel(Name);
  TransformOptions Opts;
  Opts.Unroll = std::move(U);
  Opts.Layout.NumMemories = P.NumMemories;
  TransformResult R = applyPipeline(K, Opts);
  EXPECT_TRUE(R.UnrollApplied);
  return estimateDesign(R.K, P);
}

} // namespace

TEST(OperatorLibrary, DelaysAndAreas) {
  // A 32-bit multiply fits one 40 ns cycle; a divide does not.
  EXPECT_LT(operatorDelayNs(OpClass::Mul, 32), 40.0);
  EXPECT_GT(operatorDelayNs(OpClass::Div, 32), 40.0);
  EXPECT_EQ(operatorDelayNs(OpClass::Wire, 32), 0.0);
  // Multipliers dominate adders in area.
  EXPECT_GT(operatorAreaSlices(OpClass::Mul, 32),
            4 * operatorAreaSlices(OpClass::AddSub, 32));
  // Register area scales with width.
  EXPECT_EQ(registerAreaSlices(32), 16.0);
  EXPECT_EQ(registerAreaSlices(8), 4.0);
}

TEST(OperatorLibrary, StrengthReduction) {
  EXPECT_EQ(classifyBinary(BinaryOp::Mul, true, 4), OpClass::Wire);
  EXPECT_EQ(classifyBinary(BinaryOp::Mul, true, 3), OpClass::ConstMul);
  EXPECT_EQ(classifyBinary(BinaryOp::Mul, false, 0), OpClass::Mul);
  EXPECT_EQ(classifyBinary(BinaryOp::Div, true, 8), OpClass::Wire);
  EXPECT_EQ(classifyBinary(BinaryOp::Div, false, 0), OpClass::Div);
  EXPECT_EQ(classifyBinary(BinaryOp::Shl, true, 2), OpClass::Wire);
  EXPECT_EQ(classifyBinary(BinaryOp::CmpLt, false, 0), OpClass::Compare);
  EXPECT_EQ(classifyUnary(UnaryOp::Abs), OpClass::AddSub);
}

TEST(Platform, Presets) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  EXPECT_EQ(P.NumMemories, 4u);
  EXPECT_EQ(P.Timing.ReadLatencyCycles, 1u);
  EXPECT_TRUE(P.Timing.Pipelined);
  EXPECT_EQ(P.ClockPeriodNs, 40.0);
  TargetPlatform NP = TargetPlatform::wildstarNonPipelined();
  EXPECT_EQ(NP.Timing.ReadLatencyCycles, 7u);
  EXPECT_EQ(NP.Timing.WriteLatencyCycles, 3u);
  EXPECT_FALSE(NP.Timing.Pipelined);
}

TEST(DFGBuild, CountsNodes) {
  Kernel K = buildKernel("FIR");
  // Use the single statement of FIR's inner body as a segment.
  ForStmt *Inner = perfectNest(K.topLoop())[1];
  std::vector<const Stmt *> Segment;
  for (const StmtPtr &S : Inner->body())
    Segment.push_back(S.get());
  DFG G = buildSegmentDFG(Segment,
                          [](const ArrayAccessExpr *) { return 0; });
  // D[j] = D[j] + S[i+j]*C[i]: 3 reads, 1 write, mul + add.
  EXPECT_EQ(G.numMemReads(), 3u);
  EXPECT_EQ(G.numMemWrites(), 1u);
  EXPECT_EQ(G.numComputeOfClass(OpClass::Mul), 1u);
  EXPECT_EQ(G.numComputeOfClass(OpClass::AddSub), 1u);
}

TEST(Scheduler, PortSerialization) {
  // Two reads on one port need two cycles; spread over two ports, one.
  DFG G;
  DFGNode Read;
  Read.NodeKind = DFGNode::Kind::MemRead;
  Read.WidthBits = 32;
  Read.Port = 0;
  G.Nodes.push_back(Read);
  G.Nodes.push_back(Read);
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  SegmentSchedule S1 = scheduleSegment(G, P);
  EXPECT_EQ(S1.MemOnlyCycles, 2u);

  G.Nodes[1].Port = 1;
  SegmentSchedule S2 = scheduleSegment(G, P);
  EXPECT_EQ(S2.MemOnlyCycles, 1u);
  EXPECT_EQ(S2.BitsTransferred, 64u);
  EXPECT_EQ(S2.MemReads, 2u);
}

TEST(Scheduler, NonPipelinedPortsStayBusy) {
  DFG G;
  DFGNode Read;
  Read.NodeKind = DFGNode::Kind::MemRead;
  Read.WidthBits = 32;
  Read.Port = 0;
  G.Nodes.push_back(Read);
  G.Nodes.push_back(Read);
  TargetPlatform P = TargetPlatform::wildstarNonPipelined();
  SegmentSchedule S = scheduleSegment(G, P);
  // Each read holds the port for 7 cycles.
  EXPECT_EQ(S.MemOnlyCycles, 14u);
  EXPECT_GE(S.JointCycles, 14u);
}

TEST(Scheduler, DependentComputeSerializesWithoutChaining) {
  // read -> add -> add -> write on one port.
  DFG G;
  DFGNode Read;
  Read.NodeKind = DFGNode::Kind::MemRead;
  Read.WidthBits = 32;
  Read.Port = 0;
  G.Nodes.push_back(Read);
  DFGNode Add;
  Add.NodeKind = DFGNode::Kind::Compute;
  Add.Class = OpClass::AddSub;
  Add.WidthBits = 32;
  Add.Preds = {0};
  G.Nodes.push_back(Add);
  Add.Preds = {1};
  G.Nodes.push_back(Add);
  DFGNode Write;
  Write.NodeKind = DFGNode::Kind::MemWrite;
  Write.WidthBits = 32;
  Write.Port = 0;
  Write.Preds = {2};
  G.Nodes.push_back(Write);

  TargetPlatform P = TargetPlatform::wildstarPipelined();
  P.OperatorChaining = false;
  SegmentSchedule NoChain = scheduleSegment(G, P);
  // 1 read + 2 adds + 1 write = 4 cycles.
  EXPECT_EQ(NoChain.JointCycles, 4u);
  EXPECT_EQ(NoChain.CompOnlyCycles, 2u);

  P.OperatorChaining = true;
  SegmentSchedule Chained = scheduleSegment(G, P);
  // Two 10 ns adds chain into one 40 ns cycle.
  EXPECT_LT(Chained.JointCycles, NoChain.JointCycles);
  EXPECT_EQ(Chained.CompOnlyCycles, 1u);
}

TEST(Scheduler, PeakUnitsBindConcurrency) {
  // Four independent multiplies in one cycle need four units.
  DFG G;
  for (int I = 0; I != 4; ++I) {
    DFGNode Mul;
    Mul.NodeKind = DFGNode::Kind::Compute;
    Mul.Class = OpClass::Mul;
    Mul.WidthBits = 32;
    G.Nodes.push_back(Mul);
  }
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  SegmentSchedule S = scheduleSegment(G, P);
  EXPECT_EQ((S.PeakUnits[{OpClass::Mul, 32}]), 4u);
}

TEST(Estimator, FirBaselineSanity) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  SynthesisEstimate E = estimateAt("FIR", {1, 1}, P);
  EXPECT_GT(E.Cycles, 2048u); // At least one cycle per MAC.
  EXPECT_GT(E.Slices, 0);
  EXPECT_GT(E.Registers, 32u); // The 32-register C chain at least.
  EXPECT_GT(E.FetchRate, 0);
  EXPECT_GT(E.ConsumeRate, 0);
  EXPECT_TRUE(E.fits(P.CapacitySlices));
  EXPECT_FALSE(E.toString().empty());
}

TEST(Estimator, CyclesDecreaseWithUnroll) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  uint64_t Prev = estimateAt("FIR", {1, 1}, P).Cycles;
  for (UnrollVector U : {UnrollVector{2, 2}, UnrollVector{4, 4},
                         UnrollVector{8, 8}}) {
    uint64_t Cur = estimateAt("FIR", U, P).Cycles;
    EXPECT_LT(Cur, Prev) << unrollVectorToString(U);
    Prev = Cur;
  }
}

TEST(Estimator, AreaGrowsWithUnroll) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  double Small = estimateAt("FIR", {1, 1}, P).Slices;
  double Large = estimateAt("FIR", {8, 8}, P).Slices;
  EXPECT_GT(Large, Small);
}

TEST(Estimator, NonPipelinedIsSlower) {
  for (const char *Name : {"FIR", "MM", "JAC"}) {
    uint64_t Pip =
        estimateAt(Name, {2, 2}, TargetPlatform::wildstarPipelined())
            .Cycles;
    uint64_t NonPip =
        estimateAt(Name, {2, 2}, TargetPlatform::wildstarNonPipelined())
            .Cycles;
    EXPECT_GT(NonPip, Pip) << Name;
  }
}

TEST(Estimator, NonPipelinedFirIsMemoryBound) {
  // The paper: without pipelining, FIR designs are always memory bound.
  TargetPlatform P = TargetPlatform::wildstarNonPipelined();
  for (UnrollVector U : {UnrollVector{1, 1}, UnrollVector{2, 2},
                         UnrollVector{4, 4}, UnrollVector{8, 16}}) {
    SynthesisEstimate E = estimateAt("FIR", U, P);
    EXPECT_LT(E.Balance, 1.0) << unrollVectorToString(U);
  }
}

TEST(Estimator, BalanceEqualsFetchOverConsume) {
  SynthesisEstimate E =
      estimateAt("MM", {2, 2, 1}, TargetPlatform::wildstarPipelined());
  ASSERT_GT(E.ConsumeRate, 0);
  EXPECT_NEAR(E.Balance, E.FetchRate / E.ConsumeRate, 1e-9);
}

TEST(Estimator, MulUnitsTrackUnrolling) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  SynthesisEstimate E1 = estimateAt("FIR", {1, 1}, P);
  SynthesisEstimate E4 = estimateAt("4" ? "FIR" : "", {4, 1}, P);
  unsigned Units1 = 0, Units4 = 0;
  for (const auto &[Shape, N] : E1.Units)
    if (Shape.first == OpClass::Mul)
      Units1 += N;
  for (const auto &[Shape, N] : E4.Units)
    if (Shape.first == OpClass::Mul)
      Units4 += N;
  EXPECT_GE(Units4, Units1);
  EXPECT_GE(Units4, 2u);
}

TEST(Estimator, BreakdownCoversTheWholeDesign) {
  Kernel K = buildKernel("FIR");
  TransformOptions Opts;
  Opts.Unroll = {2, 2};
  TransformResult R = applyPipeline(K, Opts);
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  std::vector<RegionReport> Breakdown;
  SynthesisEstimate Est = estimateDesign(R.K, P, &Breakdown);

  ASSERT_FALSE(Breakdown.empty());
  // Region cycles plus loop overhead account for the full estimate.
  uint64_t Sum = 0;
  for (const RegionReport &Region : Breakdown)
    Sum += Region.totalCycles();
  EXPECT_LE(Sum, Est.Cycles);
  EXPECT_GE(Sum, Est.Cycles / 2); // Overhead is bounded.

  // The steady-state inner body dominates and carries the S loads.
  const RegionReport *Hottest = &Breakdown.front();
  for (const RegionReport &Region : Breakdown)
    if (Region.totalCycles() > Hottest->totalCycles())
      Hottest = &Region;
  EXPECT_NE(Hottest->Path.find("/"), std::string::npos);
  EXPECT_GE(Hottest->MemReads, 1u);
  EXPECT_GT(Hottest->Executions, 100u);
}

TEST(Estimator, BreakdownPathsNameLoops) {
  Kernel K = buildKernel("MM");
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  std::vector<RegionReport> Breakdown;
  estimateDesign(K, P, &Breakdown);
  ASSERT_FALSE(Breakdown.empty());
  bool FoundInner = false;
  for (const RegionReport &Region : Breakdown)
    FoundInner |= Region.Path == "i/j/k";
  EXPECT_TRUE(FoundInner);
}

TEST(Scheduler, DetailedPlacementsMatchSummary) {
  Kernel K = buildKernel("FIR");
  ForStmt *Inner = perfectNest(K.topLoop())[1];
  std::vector<const Stmt *> Segment;
  for (const StmtPtr &S : Inner->body())
    Segment.push_back(S.get());
  DFG G = buildSegmentDFG(Segment,
                          [](const ArrayAccessExpr *) { return 0; });
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  DetailedSchedule D = scheduleSegmentDetailed(G, P);
  EXPECT_EQ(D.Summary.JointCycles, scheduleSegment(G, P).JointCycles);
  ASSERT_EQ(D.Placements.size(), G.Nodes.size());
  int64_t MaxEnd = 0;
  for (const NodePlacement &N : D.Placements) {
    EXPECT_LE(N.StartCycle, N.EndCycle);
    MaxEnd = std::max(MaxEnd, N.EndCycle);
  }
  EXPECT_EQ(static_cast<uint64_t>(MaxEnd), D.Summary.JointCycles);
}

TEST(Scheduler, GanttRenders) {
  Kernel K = buildKernel("FIR");
  ForStmt *Inner = perfectNest(K.topLoop())[1];
  std::vector<const Stmt *> Segment;
  for (const StmtPtr &S : Inner->body())
    Segment.push_back(S.get());
  DFG G = buildSegmentDFG(Segment,
                          [](const ArrayAccessExpr *) { return 0; });
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  DetailedSchedule D = scheduleSegmentDetailed(G, P);
  std::string Gantt = renderScheduleGantt(G, D);
  // One row per node plus the header.
  EXPECT_EQ(static_cast<size_t>(
                std::count(Gantt.begin(), Gantt.end(), '\n')),
            G.Nodes.size() + 1);
  EXPECT_NE(Gantt.find("rd@m0"), std::string::npos);
  EXPECT_NE(Gantt.find("mul32"), std::string::npos);
  EXPECT_NE(Gantt.find("#"), std::string::npos);

  DFG Empty;
  EXPECT_EQ(renderScheduleGantt(
                Empty, scheduleSegmentDetailed(Empty, P)),
            "(empty schedule)\n");
}
