//===- vhdl_test.cpp - VHDL emitter tests ---------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/Pipeline.h"
#include "defacto/VHDL/VhdlEmitter.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(Vhdl, UntransformedKernelEmits) {
  Kernel FIR = buildKernel("FIR");
  std::string V = emitVhdl(FIR);
  EXPECT_EQ(checkVhdlStructure(V), "");
  EXPECT_NE(V.find("entity defacto_fir is"), std::string::npos);
  EXPECT_NE(V.find("architecture behavioral of defacto_fir"),
            std::string::npos);
  EXPECT_NE(V.find("main : process(clk)"), std::string::npos);
  EXPECT_NE(V.find("mem_s"), std::string::npos);
  EXPECT_NE(V.find("for j in 0 to 63 loop"), std::string::npos);
  EXPECT_NE(V.find("done <= '1';"), std::string::npos);
}

TEST(Vhdl, CustomEntityName) {
  Kernel FIR = buildKernel("FIR");
  VhdlOptions Opts;
  Opts.EntityName = "my_accel";
  std::string V = emitVhdl(FIR, Opts);
  EXPECT_NE(V.find("entity my_accel is"), std::string::npos);
  EXPECT_NE(V.find("end entity my_accel;"), std::string::npos);
}

TEST(Vhdl, TransformedKernelEmitsBanksAndRotates) {
  Kernel FIR = buildKernel("FIR");
  TransformOptions Opts;
  Opts.Unroll = {2, 2};
  TransformResult R = applyPipeline(FIR, Opts);
  std::string V = emitVhdl(R.K);
  EXPECT_EQ(checkVhdlStructure(V), "");
  // Renamed banks appear as separate memories with physical annotations.
  EXPECT_NE(V.find("mem_s0"), std::string::npos);
  EXPECT_NE(V.find("mem_s1"), std::string::npos);
  EXPECT_NE(V.find("-- physical memory"), std::string::npos);
  // Register chains rotate.
  EXPECT_NE(V.find("rotate register chain"), std::string::npos);
  EXPECT_NE(V.find("rot_tmp_0"), std::string::npos);
}

TEST(Vhdl, EveryKernelEmitsWellFormed) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    TransformOptions Opts;
    Opts.Unroll = {2, 2};
    TransformResult R = applyPipeline(K, Opts);
    std::string V = emitVhdl(R.K);
    EXPECT_EQ(checkVhdlStructure(V), "") << Spec.Name;
    EXPECT_NE(V.find("entity"), std::string::npos) << Spec.Name;
  }
}

TEST(Vhdl, HelpersEmittedOnDemand) {
  Kernel SOBEL = buildKernel("SOBEL");
  std::string V = emitVhdl(SOBEL);
  // SOBEL uses abs and min.
  EXPECT_NE(V.find("int_min"), std::string::npos);
  EXPECT_NE(V.find("abs("), std::string::npos);
}

TEST(Vhdl, SteppedLoopsDeriveIndex) {
  Kernel FIR = buildKernel("FIR");
  // Unroll without normalization-after to leave stepped loops? The
  // pipeline normalizes, so build the stepped form manually.
  Kernel K("stepped");
  ArrayDecl *A = K.makeArray("A", ScalarType::Int32, {16});
  int Id = K.allocateLoopId();
  auto Loop = std::make_unique<ForStmt>(Id, "i", 0, 16, 4);
  Loop->body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ArrayAccessExpr>(
          A, std::vector<AffineExpr>{AffineExpr::term(Id, 1)}),
      std::make_unique<IntLitExpr>(1)));
  K.body().push_back(std::move(Loop));
  std::string V = emitVhdl(K);
  EXPECT_EQ(checkVhdlStructure(V), "");
  EXPECT_NE(V.find("for i_t in 0 to 3 loop"), std::string::npos);
  EXPECT_NE(V.find("i := 0 + i_t * 4;"), std::string::npos);
  (void)FIR;
}

TEST(Vhdl, StructureCheckerCatchesImbalance) {
  EXPECT_NE(checkVhdlStructure("entity x is\n"), "");
  EXPECT_NE(checkVhdlStructure("end loop;\n"), "");
  EXPECT_EQ(checkVhdlStructure("-- just a comment\n"), "");
  std::string Balanced = "entity x is\nend entity x;\n"
                         "architecture a of x is\nbegin\n"
                         "end architecture a;\n";
  EXPECT_EQ(checkVhdlStructure(Balanced), "");
}

TEST(Vhdl, MultiDimArraysLinearize) {
  Kernel MM = buildKernel("MM");
  std::string V = emitVhdl(MM);
  EXPECT_EQ(checkVhdlStructure(V), "");
  // A[32][16] flattens to 512 integers, accessed by linearized index.
  EXPECT_NE(V.find("array (0 to 511) of integer"), std::string::npos);
  EXPECT_NE(V.find("* 16 + "), std::string::npos);
}

TEST(VhdlTestbench, SelfCheckingModelForFir) {
  Kernel FIR = buildKernel("FIR");
  TransformOptions Opts;
  Opts.Unroll = {2, 2};
  TransformResult R = applyPipeline(FIR, Opts);

  MemoryImage Inputs(R.K, 77);
  MemoryImage Expected = Inputs;
  runKernel(R.K, Expected);

  std::string Tb = emitVhdlTestbench(R.K, Inputs, Expected);
  EXPECT_EQ(checkVhdlStructure(Tb), "");
  EXPECT_NE(Tb.find("entity defacto_fir_tb is"), std::string::npos);
  EXPECT_NE(Tb.find("check : process"), std::string::npos);
  // Input memories are pre-loaded; written banks get golden arrays.
  EXPECT_NE(Tb.find("variable mem_s0"), std::string::npos);
  EXPECT_NE(Tb.find("variable exp_d0"), std::string::npos);
  EXPECT_NE(Tb.find("variable exp_d1"), std::string::npos);
  // Read-only memories have no expectation arrays.
  EXPECT_EQ(Tb.find("exp_s0"), std::string::npos);
  EXPECT_NE(Tb.find("TESTBENCH PASSED"), std::string::npos);
  EXPECT_NE(Tb.find("severity failure"), std::string::npos);
}

TEST(VhdlTestbench, GoldenValuesComeFromTheSimulator) {
  // A tiny kernel with a known answer: the aggregate must contain it.
  DiagnosticEngine Diags;
  auto K = parseKernel("int A[4]; int B[4];\n"
                       "for (i = 0; i < 4; i++) B[i] = A[i] + A[i];\n",
                       "tiny", Diags);
  ASSERT_TRUE(K.has_value());
  MemoryImage Inputs(*K, 1);
  MemoryImage Expected = Inputs;
  runKernel(*K, Expected);

  std::string Tb = emitVhdlTestbench(*K, Inputs, Expected);
  EXPECT_EQ(checkVhdlStructure(Tb), "");
  // Spot-check one golden value.
  int64_t Golden = Expected.arrayData("B")[0];
  EXPECT_NE(Tb.find("exp_b"), std::string::npos);
  EXPECT_NE(Tb.find(std::to_string(Golden)), std::string::npos);
}

TEST(VhdlTestbench, AllKernelsEmitWellFormedTestbenches) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    TransformOptions Opts;
    Opts.Unroll = {2, 2};
    TransformResult R = applyPipeline(K, Opts);
    MemoryImage Inputs(R.K, 5);
    MemoryImage Expected = Inputs;
    runKernel(R.K, Expected);
    std::string Tb = emitVhdlTestbench(R.K, Inputs, Expected);
    EXPECT_EQ(checkVhdlStructure(Tb), "") << Spec.Name;
  }
}
