//===- reuse_test.cpp - Reuse analysis tests ------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/ReuseAnalysis.h"
#include "defacto/Transforms/UnrollAndJam.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

const ReuseGroup *findGroup(const std::vector<ReuseGroup> &Groups,
                            const std::string &Array) {
  for (const ReuseGroup &G : Groups)
    if (G.Array->name() == Array)
      return &G;
  return nullptr;
}

} // namespace

TEST(Reuse, FirShapes) {
  Kernel FIR = buildKernel("FIR");
  DependenceInfo DI = DependenceInfo::compute(FIR);
  std::vector<ReuseGroup> Groups = computeReuseGroups(FIR, DI);

  // D[j]: read + write, invariant in the inner loop.
  const ReuseGroup *D = findGroup(Groups, "D");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Shape, ReuseShape::InnerInvariant);
  EXPECT_TRUE(D->HasWrite);
  EXPECT_EQ(D->Accesses.size(), 2u);

  // C[i]: read-only, reuse carried by the outer loop.
  const ReuseGroup *C = findGroup(Groups, "C");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Shape, ReuseShape::OuterCarriedChain);
  EXPECT_EQ(C->CarrierPosition, 0);
  EXPECT_FALSE(C->HasWrite);

  // S[i+j]: no consistent reuse.
  const ReuseGroup *S = findGroup(Groups, "S");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Shape, ReuseShape::None);
}

TEST(Reuse, MatrixMultiplyShapes) {
  Kernel MM = buildKernel("MM");
  DependenceInfo DI = DependenceInfo::compute(MM);
  std::vector<ReuseGroup> Groups = computeReuseGroups(MM, DI);

  // Z[i][j]: invariant in k.
  const ReuseGroup *Z = findGroup(Groups, "Z");
  ASSERT_NE(Z, nullptr);
  EXPECT_EQ(Z->Shape, ReuseShape::InnerInvariant);
  EXPECT_EQ(Z->CarrierPosition, 2);

  // A[i][k]: invariant in j -> chain carried by j.
  const ReuseGroup *A = findGroup(Groups, "A");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Shape, ReuseShape::OuterCarriedChain);
  EXPECT_EQ(A->CarrierPosition, 1);

  // B[k][j]: invariant in i -> chain carried by i.
  const ReuseGroup *B = findGroup(Groups, "B");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Shape, ReuseShape::OuterCarriedChain);
  EXPECT_EQ(B->CarrierPosition, 0);
}

TEST(Reuse, JacobiWindow) {
  Kernel JAC = buildKernel("JAC");
  DependenceInfo DI = DependenceInfo::compute(JAC);
  std::vector<ReuseGroup> Groups = computeReuseGroups(JAC, DI);

  // The row accesses A[i][j-1], A[i][j+1] form an inner-carried window
  // with distance 2; A is one connected group including them.
  const ReuseGroup *A = findGroup(Groups, "A");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Shape, ReuseShape::InnerCarriedWindow);
  ASSERT_TRUE(A->Distance.has_value());
  EXPECT_GE(*A->Distance, 2);
}

TEST(Reuse, PatShapes) {
  Kernel PAT = buildKernel("PAT");
  DependenceInfo DI = DependenceInfo::compute(PAT);
  std::vector<ReuseGroup> Groups = computeReuseGroups(PAT, DI);

  const ReuseGroup *M = findGroup(Groups, "M");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Shape, ReuseShape::InnerInvariant);

  const ReuseGroup *P = findGroup(Groups, "P");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Shape, ReuseShape::OuterCarriedChain);

  const ReuseGroup *T = findGroup(Groups, "T");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Shape, ReuseShape::None);
}

TEST(Reuse, ShapeNames) {
  EXPECT_STREQ(reuseShapeName(ReuseShape::LoopIndependent),
               "loop-independent");
  EXPECT_STREQ(reuseShapeName(ReuseShape::InnerInvariant),
               "inner-invariant");
  EXPECT_STREQ(reuseShapeName(ReuseShape::OuterCarriedChain),
               "outer-carried-chain");
  EXPECT_STREQ(reuseShapeName(ReuseShape::InnerCarriedWindow),
               "inner-carried-window");
  EXPECT_STREQ(reuseShapeName(ReuseShape::None), "none");
}

TEST(Reuse, EveryKernelGroupsCoverAllAccesses) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    DependenceInfo DI = DependenceInfo::compute(K);
    std::vector<ReuseGroup> Groups = computeReuseGroups(K, DI);
    unsigned Total = 0;
    for (const ReuseGroup &G : Groups)
      Total += G.Accesses.size();
    EXPECT_EQ(Total, collectArrayAccesses(K).size()) << Spec.Name;
  }
}

TEST(Reuse, UnrolledFirExposesLoopIndependentGroup) {
  // After unroll-and-jam by (2,2), copies unroll(0,1) and unroll(1,0)
  // read the same S element (the paper's S_0): a loop-independent
  // reuse group appears.
  Kernel FIR = buildKernel("FIR");
  ASSERT_TRUE(unrollAndJam(FIR, {2, 2}));
  DependenceInfo DI = DependenceInfo::compute(FIR);
  std::vector<ReuseGroup> Groups = computeReuseGroups(FIR, DI);
  bool Found = false;
  for (const ReuseGroup &G : Groups)
    if (G.Array->name() == "S" &&
        G.Shape == ReuseShape::LoopIndependent && G.Accesses.size() >= 2)
      Found = true;
  EXPECT_TRUE(Found);
}
