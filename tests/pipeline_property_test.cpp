//===- pipeline_property_test.cpp - End-to-end transform properties -------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The central correctness property of the whole compiler: for every
/// kernel, every unroll vector, and every pass configuration, the
/// transformed kernel computes exactly what the source kernel computes.
///
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/Pipeline.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

struct PipelineCase {
  const char *KernelName;
  UnrollVector Factors;
};

std::string caseName(const ::testing::TestParamInfo<PipelineCase> &Info) {
  std::string Name = Info.param.KernelName;
  for (int64_t F : Info.param.Factors)
    Name += "_" + std::to_string(F);
  return Name;
}

class PipelineSemantics : public ::testing::TestWithParam<PipelineCase> {};

} // namespace

TEST_P(PipelineSemantics, FullPipelinePreservesResults) {
  const PipelineCase &Case = GetParam();
  Kernel Source = buildKernel(Case.KernelName);
  auto Reference = simulate(Source, 2026);

  TransformOptions Opts;
  Opts.Unroll = Case.Factors;
  TransformResult R = applyPipeline(Source, Opts);
  ASSERT_TRUE(R.UnrollApplied);
  EXPECT_TRUE(isKernelValid(R.K));
  EXPECT_EQ(simulate(R.K, 2026), Reference);
}

TEST_P(PipelineSemantics, PassSubsetsPreserveResults) {
  const PipelineCase &Case = GetParam();
  Kernel Source = buildKernel(Case.KernelName);
  auto Reference = simulate(Source, 77);

  // Every on/off combination of the three optional passes.
  for (int Mask = 0; Mask != 8; ++Mask) {
    TransformOptions Opts;
    Opts.Unroll = Case.Factors;
    Opts.EnableScalarReplacement = Mask & 1;
    Opts.EnablePeeling = Mask & 2;
    Opts.EnableDataLayout = Mask & 4;
    TransformResult R = applyPipeline(Source, Opts);
    EXPECT_TRUE(isKernelValid(R.K)) << "mask " << Mask;
    EXPECT_EQ(simulate(R.K, 77), Reference) << "mask " << Mask;
  }
}

TEST_P(PipelineSemantics, ChainCapsPreserveResults) {
  const PipelineCase &Case = GetParam();
  Kernel Source = buildKernel(Case.KernelName);
  auto Reference = simulate(Source, 5);
  for (unsigned Cap : {1u, 2u, 7u, 64u}) {
    TransformOptions Opts;
    Opts.Unroll = Case.Factors;
    Opts.SR.MaxChainLength = Cap;
    TransformResult R = applyPipeline(Source, Opts);
    EXPECT_TRUE(isKernelValid(R.K)) << "cap " << Cap;
    EXPECT_EQ(simulate(R.K, 5), Reference) << "cap " << Cap;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UnrollSweep, PipelineSemantics,
    ::testing::Values(
        PipelineCase{"FIR", {1, 1}}, PipelineCase{"FIR", {2, 1}},
        PipelineCase{"FIR", {1, 2}}, PipelineCase{"FIR", {2, 2}},
        PipelineCase{"FIR", {4, 8}}, PipelineCase{"FIR", {16, 4}},
        PipelineCase{"FIR", {64, 32}}, PipelineCase{"MM", {1, 1, 1}},
        PipelineCase{"MM", {2, 2, 1}}, PipelineCase{"MM", {4, 4, 4}},
        PipelineCase{"MM", {8, 1, 2}}, PipelineCase{"MM", {32, 4, 16}},
        PipelineCase{"PAT", {1, 1}}, PipelineCase{"PAT", {2, 4}},
        PipelineCase{"PAT", {8, 16}}, PipelineCase{"PAT", {64, 16}},
        PipelineCase{"JAC", {1, 1}}, PipelineCase{"JAC", {2, 2}},
        PipelineCase{"JAC", {4, 8}}, PipelineCase{"JAC", {32, 32}},
        PipelineCase{"SOBEL", {1, 1}}, PipelineCase{"SOBEL", {2, 2}},
        PipelineCase{"SOBEL", {8, 4}}, PipelineCase{"SOBEL", {32, 32}}),
    caseName);

namespace {

class PipelineStripMine : public ::testing::TestWithParam<PipelineCase> {};

} // namespace

TEST_P(PipelineStripMine, StripMinedPipelinePreservesResults) {
  const PipelineCase &Case = GetParam();
  Kernel Source = buildKernel(Case.KernelName);
  auto Reference = simulate(Source, 88);

  TransformOptions Opts;
  Opts.Unroll = Case.Factors;
  // Strip-mine the innermost nest loop to a small tile before unrolling
  // (the register-control configuration of §5.4).
  Opts.StripMine = {{Case.Factors.size() - 1, 4}};
  TransformResult R = applyPipeline(Source, Opts);
  EXPECT_TRUE(isKernelValid(R.K));
  EXPECT_EQ(simulate(R.K, 88), Reference);
}

INSTANTIATE_TEST_SUITE_P(
    StripMineSweep, PipelineStripMine,
    ::testing::Values(PipelineCase{"FIR", {2, 1}},
                      PipelineCase{"PAT", {2, 1}},
                      PipelineCase{"JAC", {2, 2}},
                      PipelineCase{"SOBEL", {1, 2}}),
    caseName);
