//===- placeroute_test.cpp - Post-synthesis model tests -------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/HLS/PlaceRoute.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

SynthesisEstimate estimateWithSlices(double Slices, uint64_t Cycles) {
  SynthesisEstimate E;
  E.Slices = Slices;
  E.Cycles = Cycles;
  return E;
}

} // namespace

TEST(PlaceRoute, CyclesSurviveImplementation) {
  // §6.4: "the number of clock cycles remains the same from behavioral
  // synthesis to implemented design".
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  ImplementationResult R = placeAndRoute(estimateWithSlices(2000, 777), P);
  EXPECT_EQ(R.Cycles, 777u);
}

TEST(PlaceRoute, SmallDesignsMeetTargetClock) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  ImplementationResult R =
      placeAndRoute(estimateWithSlices(1000, 100), P);
  EXPECT_TRUE(R.Routable);
  EXPECT_TRUE(R.MeetsTargetClock);
  EXPECT_EQ(R.AchievedClockNs, P.ClockPeriodNs);
}

TEST(PlaceRoute, AreaGrowsSuperlinearlyWithUtilization) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  ImplementationResult Small =
      placeAndRoute(estimateWithSlices(1000, 1), P);
  ImplementationResult Large =
      placeAndRoute(estimateWithSlices(10000, 1), P);
  EXPECT_GT(Small.Slices, 1000);
  EXPECT_GT(Large.Slices / 10000, Small.Slices / 1000);
}

TEST(PlaceRoute, OversizedDesignsAreUnroutable) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  ImplementationResult R =
      placeAndRoute(estimateWithSlices(15000, 1), P);
  EXPECT_FALSE(R.Routable);
  EXPECT_FALSE(R.MeetsTargetClock);
  EXPECT_GT(R.AchievedClockNs, P.ClockPeriodNs);
}

TEST(PlaceRoute, ClockDegradesMonotonically) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  // Compare the raw degradation (before the meets-target snap) via
  // execution time ordering on equal cycles for increasingly full
  // devices near the capacity edge.
  ImplementationResult Mid =
      placeAndRoute(estimateWithSlices(11000, 100), P);
  ImplementationResult Full =
      placeAndRoute(estimateWithSlices(14000, 100), P);
  EXPECT_LE(Mid.AchievedClockNs, Full.AchievedClockNs);
}

TEST(PlaceRoute, ExecutionTimeCombinesCyclesAndClock) {
  TargetPlatform P = TargetPlatform::wildstarPipelined();
  ImplementationResult R =
      placeAndRoute(estimateWithSlices(1000, 250), P);
  EXPECT_DOUBLE_EQ(R.executionTimeNs(), 250 * R.AchievedClockNs);
}
