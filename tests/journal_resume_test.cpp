//===- journal_resume_test.cpp - Crash-safe journal + resume tests --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The evaluation journal's crash-safety contract, pinned end to end:
/// bit-exact round-tripping of estimates (hexfloat doubles, infinity
/// included), tolerance of torn and corrupt lines, write-then-rename
/// atomicity, and the headline guarantee — a batch interrupted at ANY
/// point and resumed from its journal reproduces the uninterrupted
/// run's winners and decision digests bit-identically, spending zero
/// backend calls on journaled work. Abort points are chosen on a seeded
/// stream over the real journal a run wrote; both sequential and
/// 8-thread batches are held to the same digest.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/EvaluationJournal.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

using namespace defacto;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "defacto_" + Name;
}

bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

void writeLines(const std::string &Path,
                const std::vector<std::string> &Lines) {
  std::ofstream Out(Path, std::ios::trunc);
  for (const std::string &Line : Lines)
    Out << Line << '\n';
}

/// A small batch over two paper kernels whose every estimator call is
/// counted (thread-safely) — resumed runs prove they never touched the
/// backend by this count staying zero.
struct CountingBatch {
  std::shared_ptr<std::atomic<unsigned>> BackendCalls =
      std::make_shared<std::atomic<unsigned>>(0);

  BatchOptions Batch;
  std::shared_ptr<TraceRecorder> Trace = std::make_shared<TraceRecorder>();

  explicit CountingBatch(unsigned Threads,
                         std::shared_ptr<EvaluationJournal> Journal) {
    Batch.NumThreads = Threads;
    Batch.Journal = std::move(Journal);
    Batch.Trace = Trace;
    Trace->setEnabled(true);
  }

  std::vector<BatchResult> run() {
    BatchExplorer Engine(Batch);
    for (const char *Name : {"FIR", "MM"}) {
      ExplorerOptions Opts;
      Opts.Estimator = [Calls = BackendCalls](const Kernel &K,
                                              const TargetPlatform &P) {
        Calls->fetch_add(1, std::memory_order_relaxed);
        return estimateDesignChecked(K, P);
      };
      Engine.addJob(buildKernel(Name), std::move(Opts), "guided");
    }
    return Engine.runAll();
  }
};

struct Winner {
  std::string Name;
  UnrollVector Selected;
  uint64_t Cycles;
  double Slices;
};

std::vector<Winner> winnersOf(const std::vector<BatchResult> &Results) {
  std::vector<Winner> W;
  for (const BatchResult &R : Results)
    W.push_back({R.Name, R.Result.Selected, R.Result.SelectedEstimate.Cycles,
                 R.Result.SelectedEstimate.Slices});
  return W;
}

void expectSameWinners(const std::vector<Winner> &A,
                       const std::vector<Winner> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Selected, B[I].Selected) << A[I].Name;
    EXPECT_EQ(A[I].Cycles, B[I].Cycles) << A[I].Name;
    EXPECT_TRUE(sameBits(A[I].Slices, B[I].Slices)) << A[I].Name;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Round-trip fidelity
//===----------------------------------------------------------------------===//

TEST(EvaluationJournal, RoundTripsEstimatesBitExactly) {
  std::string Path = tempPath("roundtrip.jsonl");
  std::remove(Path.c_str());
  {
    EvaluationJournal J(Path);
    SynthesisEstimate E;
    E.Cycles = 123456789012345ull;
    E.Slices = 0.1 + 0.2; // Not representable: %g would round it away.
    E.Registers = 42;
    E.Units[{OpClass::Mul, 32}] = 3;
    E.Units[{OpClass::AddSub, 16}] = 7;
    E.FetchRate = 1.0 / 3.0;
    E.ConsumeRate = 2.0 / 7.0;
    E.Balance = HUGE_VAL; // Memory-free design: infinity must survive.
    E.MemOnlyCycles = 1e-300;
    E.CompOnlyCycles = 3.14159265358979323846;
    E.BitsTransferred = 1e300;
    E.FsmStates = 999;
    J.recordEvaluation("design-a",
                       {Expected<SynthesisEstimate>(E), 3});
    J.recordEvaluation(
        "design-b",
        {Expected<SynthesisEstimate>(Status::error(
             ErrorCode::EstimationFailed, "tool crash\nwith \"quotes\"")),
         2});
    JournalJobRecord Job;
    Job.Name = "fir @ board";
    Job.Strategy = "guided";
    Job.Selected = "(4, 2)";
    Job.Cycles = 1808;
    Job.Slices = 460.25;
    Job.Evaluations = 9;
    Job.Degraded = true;
    Job.Fits = false;
    J.recordJob(Job);
  }

  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().toString();
  EXPECT_EQ(Loaded->SkippedLines, 0u);
  ASSERT_EQ(Loaded->Evaluations.size(), 2u);

  const auto &[KeyA, A] = Loaded->Evaluations[0];
  EXPECT_EQ(KeyA, "design-a");
  EXPECT_EQ(A.Attempts, 3u);
  ASSERT_TRUE(A.ok());
  const SynthesisEstimate &G = A.Estimate.value();
  EXPECT_EQ(G.Cycles, 123456789012345ull);
  EXPECT_TRUE(sameBits(G.Slices, 0.1 + 0.2));
  EXPECT_EQ(G.Registers, 42u);
  EXPECT_EQ(G.Units.size(), 2u);
  EXPECT_EQ(G.Units.at({OpClass::Mul, 32}), 3u);
  EXPECT_EQ(G.Units.at({OpClass::AddSub, 16}), 7u);
  EXPECT_TRUE(sameBits(G.FetchRate, 1.0 / 3.0));
  EXPECT_TRUE(sameBits(G.ConsumeRate, 2.0 / 7.0));
  EXPECT_TRUE(std::isinf(G.Balance));
  EXPECT_TRUE(sameBits(G.MemOnlyCycles, 1e-300));
  EXPECT_TRUE(sameBits(G.CompOnlyCycles, 3.14159265358979323846));
  EXPECT_TRUE(sameBits(G.BitsTransferred, 1e300));
  EXPECT_EQ(G.FsmStates, 999u);

  const auto &[KeyB, B] = Loaded->Evaluations[1];
  EXPECT_EQ(KeyB, "design-b");
  EXPECT_FALSE(B.ok());
  EXPECT_EQ(B.Attempts, 2u);
  EXPECT_EQ(B.Estimate.status().code(), ErrorCode::EstimationFailed);
  EXPECT_EQ(B.Estimate.status().message(), "tool crash\nwith \"quotes\"");

  ASSERT_EQ(Loaded->Jobs.size(), 1u);
  const JournalJobRecord &Job = Loaded->Jobs[0];
  EXPECT_EQ(Job.Name, "fir @ board");
  EXPECT_EQ(Job.Strategy, "guided");
  EXPECT_EQ(Job.Selected, "(4, 2)");
  EXPECT_EQ(Job.Cycles, 1808u);
  EXPECT_TRUE(sameBits(Job.Slices, 460.25));
  EXPECT_EQ(Job.Evaluations, 9u);
  EXPECT_TRUE(Job.Degraded);
  EXPECT_FALSE(Job.Fits);
  std::remove(Path.c_str());
}

TEST(EvaluationJournal, ToleratesTornAndCorruptLines) {
  std::string Path = tempPath("torn.jsonl");
  std::remove(Path.c_str());
  {
    EvaluationJournal J(Path);
    SynthesisEstimate E;
    E.Cycles = 100;
    J.recordEvaluation("good", {Expected<SynthesisEstimate>(E), 1});
  }
  // A crash mid-write leaves a torn last line; bit rot leaves garbage.
  {
    std::ofstream Out(Path, std::ios::app);
    Out << "{\"type\":\"eval\",\"key\":\"torn-in-ha\n";
    Out << "complete garbage, not even JSON\n";
    Out << "{\"type\":\"mystery\",\"key\":\"future-record\"}\n";
  }
  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue());
  EXPECT_EQ(Loaded->SkippedLines, 3u);
  ASSERT_EQ(Loaded->Evaluations.size(), 1u);
  EXPECT_EQ(Loaded->Evaluations[0].first, "good");

  // Resume compaction: adopting and flushing rewrites a clean file.
  EvaluationJournal Resumed(Path);
  Resumed.adopt(*Loaded);
  ASSERT_TRUE(Resumed.flush().isOk());
  Expected<EvaluationJournal::Contents> Clean =
      EvaluationJournal::load(Path);
  ASSERT_TRUE(Clean.hasValue());
  EXPECT_EQ(Clean->SkippedLines, 0u);
  EXPECT_EQ(Clean->Evaluations.size(), 1u);
  std::remove(Path.c_str());
}

TEST(EvaluationJournal, MissingFileIsAnEmptyResumeNotAnError) {
  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(tempPath("never-written.jsonl"));
  ASSERT_TRUE(Loaded.hasValue());
  EXPECT_TRUE(Loaded->Evaluations.empty());
  EXPECT_TRUE(Loaded->Jobs.empty());
}

TEST(EvaluationJournal, FlushesByRenameLeavingNoTempBehind) {
  std::string Path = tempPath("atomic.jsonl");
  std::remove(Path.c_str());
  EvaluationJournal J(Path);
  SynthesisEstimate E;
  J.recordEvaluation("k", {Expected<SynthesisEstimate>(E), 1});
  EXPECT_TRUE(std::ifstream(Path).is_open());
  EXPECT_FALSE(std::ifstream(Path + ".tmp").is_open());
  // The on-disk file is complete after every record — no partial state.
  EXPECT_EQ(readLines(Path).size(), 2u); // header + 1 eval
  std::remove(Path.c_str());
}

TEST(EvaluationJournal, LoadsVersion1JournalsUnchanged) {
  // Schema v2 only widened the key vocabulary (interchange/pipeline
  // suffixes); every record shape is identical to v1, so a journal
  // written before the multi-dimensional space must replay in full.
  std::string Path = tempPath("v1.jsonl");
  writeLines(Path,
             {"{\"type\":\"header\",\"version\":\"1\"}",
              "{\"type\":\"eval\",\"key\":\"FIR|wildstar|u(2, 1)\","
              "\"attempts\":1,\"est\":{\"cycles\":1808,\"slices\":"
              "\"0x1.cc4p+8\",\"registers\":12,\"fetch\":\"0x1p-1\","
              "\"consume\":\"0x1p-1\",\"balance\":\"0x1p+0\","
              "\"mem_cycles\":\"0x1p+10\",\"comp_cycles\":\"0x1p+10\","
              "\"bits\":\"0x1p+12\",\"fsm\":17,\"units\":[]}}",
              "{\"type\":\"eval\",\"key\":\"FIR|wildstar|u(8, 1)\","
              "\"attempts\":2,\"err\":{\"code\":\"EstimationFailed\","
              "\"msg\":\"tool crash\"}}",
              "{\"type\":\"job\",\"name\":\"FIR @ wildstar\","
              "\"strategy\":\"guided\",\"selected\":\"(4, 1)\","
              "\"cycles\":904,\"slices\":\"0x1.cc4p+9\",\"evals\":7,"
              "\"degraded\":false,\"fits\":true}"});

  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().toString();
  EXPECT_EQ(Loaded->SkippedLines, 0u);
  ASSERT_EQ(Loaded->Evaluations.size(), 2u);
  EXPECT_EQ(Loaded->Evaluations[0].first, "FIR|wildstar|u(2, 1)");
  ASSERT_TRUE(Loaded->Evaluations[0].second.ok());
  EXPECT_EQ(Loaded->Evaluations[0].second.Estimate.value().Cycles, 1808u);
  EXPECT_FALSE(Loaded->Evaluations[1].second.ok());
  ASSERT_EQ(Loaded->Jobs.size(), 1u);
  EXPECT_EQ(Loaded->Jobs[0].Name, "FIR @ wildstar");
  EXPECT_EQ(Loaded->Jobs[0].Cycles, 904u);

  // Adopting a v1 journal compacts it forward to the current version.
  EvaluationJournal Resumed(Path);
  Resumed.adopt(*Loaded);
  ASSERT_TRUE(Resumed.flush().isOk());
  std::vector<std::string> Lines = readLines(Path);
  ASSERT_FALSE(Lines.empty());
  EXPECT_NE(Lines[0].find("\"version\":\"2\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(EvaluationJournal, UnknownFutureVersionIsSkippedNotFatal) {
  std::string Path = tempPath("v99.jsonl");
  writeLines(Path, {"{\"type\":\"header\",\"version\":\"99\"}",
                    "{\"type\":\"job\",\"name\":\"X\",\"strategy\":\"g\","
                    "\"selected\":\"(1)\",\"cycles\":1,\"slices\":"
                    "\"0x1p+0\",\"evals\":1,\"degraded\":false,"
                    "\"fits\":true}"});
  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue());
  // The alien header is skipped (and counted); readable records still load.
  EXPECT_EQ(Loaded->SkippedLines, 1u);
  EXPECT_EQ(Loaded->Jobs.size(), 1u);
  std::remove(Path.c_str());
}

TEST(EvaluationJournal, ReplaySeedsTheCacheWithoutReFulfilling) {
  std::string Path = tempPath("replay.jsonl");
  std::remove(Path.c_str());
  EvaluationJournal J(Path);
  SynthesisEstimate E;
  E.Cycles = 77;
  J.recordEvaluation("k1", {Expected<SynthesisEstimate>(E), 2});
  J.recordEvaluation(
      "k2", {Expected<SynthesisEstimate>(
                 Status::error(ErrorCode::EstimationFailed, "dead")),
             3});

  EstimateCache Cache;
  unsigned ObserverFires = 0;
  Cache.setObserver([&ObserverFires](const std::string &,
                                     const EstimateCache::Result &) {
    ++ObserverFires;
  });
  EXPECT_EQ(J.replayInto(Cache), 2u);
  EXPECT_EQ(ObserverFires, 0u); // Seeded entries are already durable.
  EXPECT_EQ(Cache.size(), 2u);
  auto K1 = Cache.peek("k1");
  ASSERT_TRUE(K1.has_value());
  EXPECT_TRUE(K1->ok());
  EXPECT_EQ(K1->Attempts, 2u);
  EXPECT_EQ(K1->Estimate.value().Cycles, 77u);
  auto K2 = Cache.peek("k2");
  ASSERT_TRUE(K2.has_value());
  EXPECT_FALSE(K2->ok());
  // Replaying again over a warm cache inserts nothing.
  EXPECT_EQ(J.replayInto(Cache), 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The headline guarantee: kill anywhere, resume, get the same answer
//===----------------------------------------------------------------------===//

TEST(JournalResume, ResumeAtRandomAbortPointsIsBitIdentical) {
  for (unsigned Threads : {1u, 8u}) {
    std::string Path = tempPath("chaos_" + std::to_string(Threads) +
                                ".jsonl");
    std::remove(Path.c_str());

    // The uninterrupted run: the ground truth winners and digest, and
    // the journal whose prefixes model every possible crash point.
    CountingBatch Full(Threads, std::make_shared<EvaluationJournal>(Path));
    std::vector<Winner> TrueWinners = winnersOf(Full.run());
    std::vector<std::string> TrueDigest = Full.Trace->decisionDigest();
    unsigned FullCalls = Full.BackendCalls->load();
    ASSERT_GT(FullCalls, 0u);
    std::vector<std::string> Lines = readLines(Path);
    ASSERT_GT(Lines.size(), 2u);

    // A crash after the final flush: resume replays everything and the
    // backend is never called again.
    {
      CountingBatch Resumed(Threads,
                            std::make_shared<EvaluationJournal>(Path));
      Expected<EvaluationJournal::Contents> Loaded =
          EvaluationJournal::load(Path);
      ASSERT_TRUE(Loaded.hasValue());
      Resumed.Batch.Journal->adopt(*Loaded);
      Resumed.Batch.Cache = std::make_shared<EstimateCache>();
      Resumed.Batch.Journal->replayInto(*Resumed.Batch.Cache);
      std::vector<Winner> W = winnersOf(Resumed.run());
      expectSameWinners(TrueWinners, W);
      EXPECT_EQ(Resumed.Trace->decisionDigest(), TrueDigest);
      EXPECT_EQ(Resumed.BackendCalls->load(), 0u);
    }

    // Crashes at seeded random abort points, torn final line included:
    // truncate the journal to a prefix, resume, demand bit-identical
    // winners and decision digests and a strictly smaller backend bill.
    SplitMix64 Rng(0xC0FFEE + Threads);
    for (unsigned Trial = 0; Trial != 6; ++Trial) {
      size_t Keep = 1 + Rng.next() % (Lines.size() - 1);
      std::vector<std::string> Prefix(Lines.begin(),
                                      Lines.begin() + Keep);
      if (Keep < Lines.size()) // The write the crash interrupted.
        Prefix.push_back(Lines[Keep].substr(0, Lines[Keep].size() / 2));
      writeLines(Path, Prefix);

      CountingBatch Resumed(Threads,
                            std::make_shared<EvaluationJournal>(Path));
      Expected<EvaluationJournal::Contents> Loaded =
          EvaluationJournal::load(Path);
      ASSERT_TRUE(Loaded.hasValue());
      Resumed.Batch.Journal->adopt(*Loaded);
      Resumed.Batch.Cache = std::make_shared<EstimateCache>();
      unsigned Replayed =
          Resumed.Batch.Journal->replayInto(*Resumed.Batch.Cache);
      std::vector<Winner> W = winnersOf(Resumed.run());

      expectSameWinners(TrueWinners, W);
      EXPECT_EQ(Resumed.Trace->decisionDigest(), TrueDigest)
          << "threads " << Threads << " trial " << Trial << " keep "
          << Keep;
      // Only the work the journal did not cover hits the backend.
      EXPECT_LE(Resumed.BackendCalls->load(), FullCalls);
      if (Replayed > 0) {
        EXPECT_LT(Resumed.BackendCalls->load(), FullCalls);
      }

      // The resumed run completed and re-flushed: the journal is whole
      // again and a further resume costs zero backend calls.
      Lines = readLines(Path);
    }
    std::remove(Path.c_str());
  }
}

TEST(JournalResume, ResumedJobsVerifyAgainstTheirJournalRecord) {
  std::string Path = tempPath("verify.jsonl");
  std::remove(Path.c_str());
  CountingBatch Full(1, std::make_shared<EvaluationJournal>(Path));
  (void)Full.run();

  CountingBatch Resumed(1, std::make_shared<EvaluationJournal>(Path));
  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue());
  Resumed.Batch.Journal->adopt(*Loaded);
  Resumed.Batch.Cache = std::make_shared<EstimateCache>();
  Resumed.Batch.Journal->replayInto(*Resumed.Batch.Cache);
  std::vector<BatchResult> Results = Resumed.run();
  for (const BatchResult &R : Results)
    EXPECT_NE(R.Result.Trace.find("resume: reproduced journaled winner"),
              std::string::npos)
        << R.Name << ":\n"
        << R.Result.Trace;
  std::remove(Path.c_str());
}
