//===- explorer_test.cpp - Design space exploration tests -----------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

ExplorerOptions pipelined() {
  ExplorerOptions Opts;
  Opts.Platform = TargetPlatform::wildstarPipelined();
  return Opts;
}

ExplorerOptions nonPipelined() {
  ExplorerOptions Opts;
  Opts.Platform = TargetPlatform::wildstarNonPipelined();
  return Opts;
}

} // namespace

TEST(Explorer, InitialVectorIsAtSaturation) {
  Kernel FIR = buildKernel("FIR");
  DesignSpaceExplorer Ex(FIR, pipelined());
  UnrollVector Uinit = Ex.initialVector();
  EXPECT_EQ(unrollProduct(Uinit), Ex.saturation().Psat);
  EXPECT_TRUE(Ex.space().isCandidate(Uinit));
}

TEST(Explorer, EvaluationIsCachedAndValidated) {
  Kernel FIR = buildKernel("FIR");
  DesignSpaceExplorer Ex(FIR, pipelined());
  auto A = Ex.evaluate({2, 2});
  ASSERT_TRUE(A.has_value());
  auto B = Ex.evaluate({2, 2});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(A->Cycles, B->Cycles);
  EXPECT_FALSE(Ex.evaluate({3, 2}).has_value()); // Not a candidate.
}

TEST(Explorer, SelectedDesignFitsAndBeatsBaseline) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    for (const ExplorerOptions &Opts : {pipelined(), nonPipelined()}) {
      DesignSpaceExplorer Ex(K, Opts);
      ExplorationResult R = Ex.run();
      EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices)
          << Spec.Name;
      EXPECT_LE(R.SelectedEstimate.Cycles, R.BaselineEstimate.Cycles)
          << Spec.Name;
      EXPECT_GE(R.speedup(), 1.0) << Spec.Name;
      EXPECT_FALSE(R.Visited.empty()) << Spec.Name;
      EXPECT_FALSE(R.Trace.empty()) << Spec.Name;
    }
  }
}

TEST(Explorer, SearchesTinyFractionOfSpace) {
  // The paper's headline: ~0.3% of the design space on average.
  double Total = 0;
  unsigned N = 0;
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    for (const ExplorerOptions &Opts : {pipelined(), nonPipelined()}) {
      ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
      EXPECT_LT(R.fractionSearched(), 0.02) << Spec.Name;
      Total += R.fractionSearched();
      ++N;
    }
  }
  EXPECT_LT(Total / N, 0.01); // Average under 1%.
}

TEST(Explorer, NonPipelinedFirStopsMemoryBoundAtSaturation) {
  // The paper: non-pipelined FIR designs are always memory bound, so
  // the search stops at the saturation point.
  Kernel FIR = buildKernel("FIR");
  ExplorationResult R = DesignSpaceExplorer(FIR, nonPipelined()).run();
  EXPECT_EQ(R.Visited.size(), 1u);
  EXPECT_EQ(unrollProduct(R.Selected), R.Sat.Psat);
  EXPECT_LT(R.SelectedEstimate.Balance, 1.0);
  EXPECT_NE(R.Trace.find("memory bound at Uinit"), std::string::npos);
}

TEST(Explorer, PipelinedFirGrowsWhileComputeBound) {
  Kernel FIR = buildKernel("FIR");
  ExplorationResult R = DesignSpaceExplorer(FIR, pipelined()).run();
  // The search moves beyond the saturation point and finds a large
  // parallel design (the paper reports 17x; the model lands in the same
  // regime).
  EXPECT_GT(unrollProduct(R.Selected), R.Sat.Psat);
  EXPECT_GT(R.speedup(), 8.0);
  EXPECT_GT(R.Visited.size(), 2u);
}

TEST(Explorer, SelectedPerformanceNearExhaustiveBest) {
  // Criterion 2/3 of §3: close to the fastest design; smaller when
  // comparable. The balance-guided stop is allowed a bounded gap.
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorationResult Dse = DesignSpaceExplorer(K, pipelined()).run();
    ExplorationResult Exh = exploreExhaustive(K, pipelined());
    ASSERT_GT(Exh.SelectedEstimate.Cycles, 0u);
    double Gap = static_cast<double>(Dse.SelectedEstimate.Cycles) /
                 static_cast<double>(Exh.SelectedEstimate.Cycles);
    EXPECT_LT(Gap, 5.0) << Spec.Name;
    // And the selected design is never larger than the exhaustive
    // winner by more than its performance deficit would justify.
    EXPECT_LE(Dse.SelectedEstimate.Slices,
              Exh.SelectedEstimate.Slices * 1.25)
        << Spec.Name;
  }
}

TEST(Explorer, ExhaustiveVisitsEveryCandidate) {
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Opts = pipelined();
  ExplorationResult R = exploreExhaustive(FIR, Opts);
  DesignSpaceExplorer Ex(FIR, Opts);
  EXPECT_EQ(R.Visited.size(), Ex.space().allCandidates().size());
  // The exhaustive winner fits.
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
}

TEST(Explorer, RandomBaselineIsDeterministic) {
  Kernel FIR = buildKernel("FIR");
  ExplorationResult A = exploreRandom(FIR, pipelined(), 6, 99);
  ExplorationResult B = exploreRandom(FIR, pipelined(), 6, 99);
  EXPECT_EQ(A.Selected, B.Selected);
  EXPECT_EQ(A.Visited.size(), 6u);
  ExplorationResult C = exploreRandom(FIR, pipelined(), 6, 100);
  // A different seed usually picks different candidates; at minimum it
  // remains a valid exploration.
  EXPECT_EQ(C.Visited.size(), 6u);
}

TEST(Explorer, CapacityConstraintForcesSmallerDesign) {
  // Shrink the device so the saturation design cannot fit: the explorer
  // must fall back to FindLargestFit and still return a fitting design.
  Kernel MM = buildKernel("MM");
  ExplorerOptions Opts = pipelined();
  Opts.Platform.CapacitySlices = 5000; // MM's Uinit needs ~7000.
  ExplorationResult R = DesignSpaceExplorer(MM, Opts).run();
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
  EXPECT_NE(R.Trace.find("FindLargestFit"), std::string::npos);
}

TEST(Explorer, RegisterCapLimitsRegisters) {
  Kernel MM = buildKernel("MM"); // Baseline needs ~81 registers.
  ExplorerOptions Opts = pipelined();
  Opts.RegisterCap = 40;
  DesignSpaceExplorer Ex(MM, Opts);
  auto Est = Ex.evaluate({1, 1, 1});
  ASSERT_TRUE(Est.has_value());
  EXPECT_LE(Est->Registers, 40u);
}

TEST(Explorer, BalanceToleranceStopsEarly) {
  Kernel JAC = buildKernel("JAC");
  ExplorerOptions Opts = pipelined();
  Opts.BalanceTolerance = 0.5; // Very lax: saturation design balances.
  ExplorationResult R = DesignSpaceExplorer(JAC, Opts).run();
  EXPECT_EQ(R.Visited.size(), 1u);
}

TEST(Explorer, AblationWithoutScalarReplacement) {
  // The transform toggles flow through to evaluation: disabling scalar
  // replacement leaves all memory traffic in place, so the baseline
  // estimate is slower.
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions With = pipelined();
  ExplorerOptions Without = pipelined();
  Without.BaseTransforms.EnableScalarReplacement = false;
  auto EstWith = DesignSpaceExplorer(FIR, With).evaluate({1, 1});
  auto EstWithout = DesignSpaceExplorer(FIR, Without).evaluate({1, 1});
  ASSERT_TRUE(EstWith && EstWithout);
  EXPECT_GT(EstWithout->Cycles, EstWith->Cycles);
}

TEST(Explorer, MaxEvaluationsBoundsTheSearch) {
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Opts = pipelined();
  Opts.MaxEvaluations = 2;
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();
  EXPECT_LE(R.Visited.size(), 2u);
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
  EXPECT_LE(R.EvaluationsUsed, 2u);
}

TEST(Explorer, BudgetExhaustionSelectsBestEvaluatedDeterministically) {
  // Regression: when MaxEvaluations runs out mid-search, the explorer
  // must not spend an extra estimation on the final selection. It picks
  // the best design it already evaluated — deterministically — and says
  // so in the failure log.
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Opts = pipelined();
  Opts.MaxEvaluations = 3; // Baseline + Uinit + one increase step.
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();

  EXPECT_EQ(R.EvaluationsUsed, 3u); // Exactly the budget, never more.
  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_EQ(R.Failures.back().Error.code(), ErrorCode::BudgetExhausted);

  // Selection is the fastest fitting design among those evaluated.
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
  for (const EvaluatedDesign &D : R.Visited)
    if (D.Estimate.Slices <= Opts.Platform.CapacitySlices)
      EXPECT_LE(R.SelectedEstimate.Cycles, D.Estimate.Cycles);
  EXPECT_LE(R.SelectedEstimate.Cycles, R.BaselineEstimate.Cycles);

  // Byte-for-byte reproducible.
  ExplorationResult R2 = DesignSpaceExplorer(FIR, Opts).run();
  EXPECT_EQ(R.Selected, R2.Selected);
  EXPECT_EQ(R.Trace, R2.Trace);
}

TEST(Explorer, NonPowerOfTwoTripsDistributeSaturation) {
  // Trip counts 6 and 10 admit no single loop with a factor of Psat=4;
  // the initial vector must distribute the product across loops.
  DiagnosticEngine Diags;
  auto K = parseKernel("int A[32]; int B[32]; int R[8];\n"
                       "for (i = 0; i < 6; i++)\n"
                       "  for (j = 0; j < 10; j++)\n"
                       "    R[i] = R[i] + A[i + j] * B[2*i + j];\n",
                       "odd", Diags);
  ASSERT_TRUE(K.has_value()) << Diags.toString();
  ExplorerOptions Opts = pipelined();
  DesignSpaceExplorer Ex(*K, Opts);
  UnrollVector Uinit = Ex.initialVector();
  EXPECT_TRUE(Ex.space().isCandidate(Uinit));
  EXPECT_EQ(unrollProduct(Uinit), Ex.saturation().Psat);
  ExplorationResult R = Ex.run();
  EXPECT_GE(R.speedup(), 1.0);
}

TEST(Explorer, SingleLoopKernel) {
  DiagnosticEngine Diags;
  auto K = parseKernel("int A[64]; int s;\n"
                       "for (i = 0; i < 64; i++) s = s + A[i];\n",
                       "reduce", Diags);
  ASSERT_TRUE(K.has_value()) << Diags.toString();
  ExplorerOptions Opts = pipelined();
  ExplorationResult R = DesignSpaceExplorer(*K, Opts).run();
  EXPECT_EQ(R.Selected.size(), 1u);
  EXPECT_GE(R.speedup(), 1.0);
  EXPECT_TRUE(R.SelectedFits);
}
