//===- resilience_test.cpp - Breaker, watchdog, bounded-log tests ---------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The crash-safety layer minus the journal (journal_resume_test.cpp):
/// cooperative cancellation tokens, the per-evaluation hang watchdog
/// against injected hangs, the per-backend circuit breaker's state
/// machine alone and wired into the evaluation service, and the bounded
/// failure ring. All clocks are virtual — hangs, cooldowns, and
/// watchdog deadlines resolve deterministically in zero real time.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/CircuitBreaker.h"
#include "defacto/Core/Explorer.h"
#include "defacto/HLS/FaultInjector.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Cancellation.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

struct VirtualClock {
  double Now = 0;
  void install(ExplorerOptions &Opts) {
    Opts.Clock = [this] { return Now; };
    Opts.Sleep = [this](double S) { Now += S; };
  }
  void install(FaultInjector &Inj) {
    Inj.Sleep = [this](double S) { Now += S; };
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// CancellationToken
//===----------------------------------------------------------------------===//

TEST(Cancellation, DefaultTokenIsInertAndFree) {
  CancellationToken T;
  EXPECT_FALSE(T.valid());
  EXPECT_FALSE(T.cancelled());
  EXPECT_TRUE(T.check().isOk());
  T.requestCancel("ignored"); // No shared state: a no-op, not a crash.
  EXPECT_FALSE(T.cancelled());
}

TEST(Cancellation, ExplicitCancelIsSharedAcrossCopies) {
  CancellationToken T = CancellationToken::create();
  CancellationToken Copy = T;
  EXPECT_FALSE(Copy.cancelled());
  T.requestCancel("operator abort");
  EXPECT_TRUE(Copy.cancelled());
  EXPECT_EQ(Copy.check().code(), ErrorCode::Cancelled);
  EXPECT_NE(Copy.check().message().find("operator abort"),
            std::string::npos);
  // First reason wins; later cancels do not rewrite it.
  T.requestCancel("second");
  EXPECT_NE(Copy.check().message().find("operator abort"),
            std::string::npos);
}

TEST(Cancellation, DeadlineLatchesOnTheInjectedClock) {
  double Now = 0;
  CancellationToken T = CancellationToken::withDeadline(
      5.0, [&Now] { return Now; }, "estimator watchdog");
  EXPECT_FALSE(T.cancelled());
  Now = 4.999;
  EXPECT_FALSE(T.cancelled());
  Now = 5.0;
  EXPECT_TRUE(T.cancelled());
  EXPECT_EQ(T.check().code(), ErrorCode::Cancelled);
  EXPECT_NE(T.check().message().find("watchdog"), std::string::npos);
  Now = 0; // Latched: a rewound clock cannot un-cancel.
  EXPECT_TRUE(T.cancelled());
}

TEST(Cancellation, ScopesInstallThreadLocallyAndNest) {
  EXPECT_FALSE(currentCancellation().valid());
  EXPECT_FALSE(currentCancelled());
  CancellationToken Outer = CancellationToken::create();
  {
    CancellationScope OuterScope(Outer);
    EXPECT_TRUE(currentCancellation().valid());
    EXPECT_FALSE(currentCancelled());
    {
      CancellationToken Inner = CancellationToken::create();
      CancellationScope InnerScope(Inner);
      Inner.requestCancel();
      EXPECT_TRUE(currentCancelled());
    }
    // Inner scope gone: the outer (uncancelled) token is current again.
    EXPECT_FALSE(currentCancelled());
    Outer.requestCancel();
    EXPECT_TRUE(currentCancelled());
    EXPECT_EQ(currentCancelStatus().code(), ErrorCode::Cancelled);
  }
  EXPECT_FALSE(currentCancellation().valid());
}

//===----------------------------------------------------------------------===//
// Hang watchdog
//===----------------------------------------------------------------------===//

TEST(HangWatchdog, CancelsEveryInjectedHang) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.HangRate = 1.0;
  FI.LatencySeconds = 0.05;
  FaultInjector Injector(FI);
  Clock.install(Injector);

  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  Opts.WatchdogSeconds = 1.0;
  Opts.MaxRetries = 0;
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();

  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Failures.empty());
  for (const EvaluationFailure &F : R.Failures)
    EXPECT_EQ(F.Error.code(), ErrorCode::Cancelled) << F.Error.toString();
  const FaultInjector::Counters &C = Injector.counters();
  EXPECT_GT(C.Hangs, 0u);
  EXPECT_EQ(C.Hangs, C.HangCancellations);
  // Each hang burned about one watchdog interval of virtual time, not
  // the unbounded forever a real hung tool would.
  EXPECT_LE(Clock.Now, C.Hangs * (1.0 + 2 * FI.LatencySeconds));
}

TEST(HangWatchdog, SurvivingHangsStillConvergeWhenRetriesRecover) {
  // Hang probability 0.3 with retries: some attempts hang and are
  // cancelled, their retries succeed, and the search must converge to
  // the same winner as a healthy run.
  Kernel FIR = buildKernel("FIR");
  ExplorationResult Healthy =
      DesignSpaceExplorer(FIR, ExplorerOptions()).run();

  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.Seed = 11;
  FI.HangRate = 0.3;
  FaultInjector Injector(FI);
  Clock.install(Injector);

  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  Opts.WatchdogSeconds = 0.5;
  Opts.MaxRetries = 8; // Enough that P(all attempts hang) ~ 0.
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();

  EXPECT_FALSE(R.Degraded) << R.Trace;
  EXPECT_EQ(R.Selected, Healthy.Selected);
  EXPECT_EQ(R.SelectedEstimate.Cycles, Healthy.SelectedEstimate.Cycles);
  EXPECT_GT(Injector.counters().HangCancellations, 0u);
}

TEST(HangWatchdog, NoWatchdogMeansTheHangGivesUpBounded) {
  // The injector's no-watchdog bound: a hang without any token armed
  // must terminate on its own (as EstimationFailed) instead of spinning
  // the suite forever.
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.HangRate = 1.0;
  FaultInjector Injector(FI);
  Clock.install(Injector);

  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  Opts.MaxRetries = 0;
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();

  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Failures.empty());
  for (const EvaluationFailure &F : R.Failures)
    EXPECT_EQ(F.Error.code(), ErrorCode::EstimationFailed)
        << F.Error.toString();
  EXPECT_EQ(Injector.counters().HangCancellations, 0u);
}

TEST(HangWatchdog, EmitsCancelTraceEvents) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.HangRate = 1.0;
  FaultInjector Injector(FI);
  Clock.install(Injector);

  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  Opts.WatchdogSeconds = 1.0;
  Opts.MaxRetries = 0;
  Opts.Trace = std::make_shared<TraceRecorder>();
  Opts.Trace->setEnabled(true);
  (void)DesignSpaceExplorer(FIR, Opts).run();

  unsigned Cancels = 0;
  for (const TraceEvent &E : Opts.Trace->sortedEvents())
    if (E.Category == "dse.cancel")
      ++Cancels;
  EXPECT_GT(Cancels, 0u);
}

//===----------------------------------------------------------------------===//
// Circuit breaker: the state machine alone
//===----------------------------------------------------------------------===//

TEST(CircuitBreaker, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreakerOptions Opts;
  Opts.FailureThreshold = 3;
  Opts.CooldownSeconds = 10.0;
  CircuitBreakerRegistry Reg(Opts);

  EXPECT_EQ(Reg.admit("wildstar", 0),
            CircuitBreakerRegistry::Decision::Allow);
  EXPECT_EQ(Reg.recordFailure("wildstar", 0), nullptr);
  EXPECT_EQ(Reg.recordFailure("wildstar", 1), nullptr);
  EXPECT_STREQ(Reg.recordFailure("wildstar", 2), "opened");
  EXPECT_EQ(Reg.admit("wildstar", 3),
            CircuitBreakerRegistry::Decision::FailFast);
  EXPECT_EQ(Reg.snapshot("wildstar").Current,
            CircuitBreakerRegistry::State::Open);
  EXPECT_EQ(Reg.snapshot("wildstar").FastFailures, 1u);
  // A success resets the consecutive count while closed.
  EXPECT_EQ(Reg.recordFailure("other", 0), nullptr);
  EXPECT_EQ(Reg.recordSuccess("other", 1), nullptr);
  EXPECT_EQ(Reg.recordFailure("other", 2), nullptr);
  EXPECT_EQ(Reg.snapshot("other").Current,
            CircuitBreakerRegistry::State::Closed);
}

TEST(CircuitBreaker, HalfOpenProbeRestoresOrReopens) {
  CircuitBreakerOptions Opts;
  Opts.FailureThreshold = 1;
  Opts.CooldownSeconds = 10.0;
  CircuitBreakerRegistry Reg(Opts);

  EXPECT_STREQ(Reg.recordFailure("be", 0), "opened");
  EXPECT_EQ(Reg.admit("be", 5), CircuitBreakerRegistry::Decision::FailFast);
  // Cooldown elapsed: exactly one probe is admitted; a second caller
  // keeps failing fast while the probe is in flight.
  EXPECT_EQ(Reg.admit("be", 10), CircuitBreakerRegistry::Decision::Probe);
  EXPECT_EQ(Reg.admit("be", 11),
            CircuitBreakerRegistry::Decision::FailFast);
  // Probe fails: reopen, cooldown restarts from now.
  EXPECT_STREQ(Reg.recordFailure("be", 12), "reopened");
  EXPECT_EQ(Reg.admit("be", 13), CircuitBreakerRegistry::Decision::FailFast);
  EXPECT_EQ(Reg.admit("be", 22), CircuitBreakerRegistry::Decision::Probe);
  // Probe succeeds: closed, service restored.
  EXPECT_STREQ(Reg.recordSuccess("be", 23), "closed");
  EXPECT_EQ(Reg.admit("be", 24), CircuitBreakerRegistry::Decision::Allow);
  EXPECT_EQ(Reg.snapshot("be").TimesOpened, 2u);
  EXPECT_EQ(Reg.snapshot("be").Probes, 2u);
}

//===----------------------------------------------------------------------===//
// Circuit breaker wired into the evaluation service
//===----------------------------------------------------------------------===//

TEST(CircuitBreaker, FailsEvaluationsFastOnceOpen) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  unsigned BackendCalls = 0;
  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = [&BackendCalls](const Kernel &,
                                   const TargetPlatform &)
      -> Expected<SynthesisEstimate> {
    ++BackendCalls;
    return Status::error(ErrorCode::EstimationFailed, "backend down");
  };
  Opts.MaxRetries = 0;
  CircuitBreakerOptions BreakerOpts;
  BreakerOpts.FailureThreshold = 2;
  BreakerOpts.CooldownSeconds = 1000.0; // Never half-opens in this test.
  Opts.Breakers = std::make_shared<CircuitBreakerRegistry>(BreakerOpts);

  // Exhaustive search keeps evaluating past failures, so the breaker
  // sees the full candidate stream (the guided walk would stop at its
  // first unsteerable failure, before the circuit ever mattered).
  Expected<ExplorationResult> ROr =
      DesignSpaceExplorer(FIR, Opts).runWithStrategy("exhaustive");
  ASSERT_TRUE(ROr.hasValue());
  ExplorationResult R = *ROr;
  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Failures.empty());
  // The first FailureThreshold permanent failures reached the backend;
  // everything after failed fast without touching it.
  EXPECT_EQ(BackendCalls, BreakerOpts.FailureThreshold);
  unsigned FastFailures = 0;
  for (const EvaluationFailure &F : R.Failures)
    if (F.Error.code() == ErrorCode::BackendUnavailable) {
      ++FastFailures;
      EXPECT_EQ(F.Attempts, 0u); // Never charged against the budget.
    }
  EXPECT_GT(FastFailures, 0u);
  // Fast failures cost no evaluations: only the real attempts counted.
  EXPECT_EQ(R.EvaluationsUsed, BackendCalls);
  CircuitBreakerRegistry::Snapshot Snap =
      Opts.Breakers->snapshot(Opts.Platform.Name);
  EXPECT_EQ(Snap.Current, CircuitBreakerRegistry::State::Open);
  EXPECT_EQ(Snap.FastFailures, FastFailures);
}

TEST(CircuitBreaker, HalfOpenProbeRestoresServiceMidSearch) {
  // Backend dead for its first 6 calls, healthy afterwards. With a
  // 2-failure threshold, retries exhaust on the first two designs and
  // the breaker opens. Every clock read ticks time forward, so the
  // fail-fast stretch walks past the cooldown, a half-open probe finds
  // the backend recovered, and the exhaustive search finishes healthy.
  Kernel FIR = buildKernel("FIR");
  double Now = 0.0;
  unsigned Calls = 0;
  ExplorerOptions Opts;
  Opts.Clock = [&Now] {
    Now += 0.05;
    return Now;
  };
  Opts.Sleep = [&Now](double S) { Now += S; };
  Opts.Estimator = [&Calls](const Kernel &K, const TargetPlatform &P)
      -> Expected<SynthesisEstimate> {
    if (++Calls <= 6)
      return Status::error(ErrorCode::EstimationFailed, "still booting");
    return estimateDesignChecked(K, P);
  };
  Opts.MaxRetries = 2;
  Opts.RetryBackoffSeconds = 1.0; // Advances the virtual clock.
  CircuitBreakerOptions BreakerOpts;
  BreakerOpts.FailureThreshold = 2;
  BreakerOpts.CooldownSeconds = 0.2;
  Opts.Breakers = std::make_shared<CircuitBreakerRegistry>(BreakerOpts);
  Opts.Trace = std::make_shared<TraceRecorder>();
  Opts.Trace->setEnabled(true);

  Expected<ExplorationResult> ROr =
      DesignSpaceExplorer(FIR, Opts).runWithStrategy("exhaustive");
  ASSERT_TRUE(ROr.hasValue());
  ExplorationResult R = *ROr;
  // Designs evaluated after the probe closed the circuit succeeded:
  // the search still selected a real, fitting winner.
  EXPECT_FALSE(R.Visited.empty());
  EXPECT_TRUE(R.SelectedFits);
  EXPECT_GT(R.SelectedEstimate.Cycles, 0u);
  CircuitBreakerRegistry::Snapshot Snap =
      Opts.Breakers->snapshot(Opts.Platform.Name);
  EXPECT_EQ(Snap.Current, CircuitBreakerRegistry::State::Closed);
  EXPECT_GE(Snap.TimesOpened, 1u);
  EXPECT_GE(Snap.Probes, 1u);
  EXPECT_GT(Snap.FastFailures, 0u);

  // The transitions landed as dse.breaker events.
  bool SawOpen = false, SawClose = false;
  for (const TraceEvent &E : Opts.Trace->sortedEvents()) {
    if (E.Category != "dse.breaker")
      continue;
    for (const auto &[K, V] : E.Runtime) {
      if (K != "event")
        continue;
      SawOpen |= V == "opened";
      SawClose |= V == "closed";
    }
  }
  EXPECT_TRUE(SawOpen);
  EXPECT_TRUE(SawClose);
}

TEST(CircuitBreaker, OpenCircuitStillServesCachedResults) {
  // The gate sits behind the cache: designs estimated before the outage
  // keep being served from cache while the circuit is open.
  Kernel FIR = buildKernel("FIR");
  auto Shared = std::make_shared<EstimateCache>();
  auto Breakers = std::make_shared<CircuitBreakerRegistry>(
      CircuitBreakerOptions{1, 1e9});

  // Healthy pass fills the cache.
  ExplorerOptions Warm;
  Warm.Cache = Shared;
  ExplorationResult First = DesignSpaceExplorer(FIR, Warm).run();
  EXPECT_FALSE(First.Degraded);

  // Backend now dead and the breaker armed: the rerun must reproduce
  // the healthy result entirely from cache, never failing fast.
  ExplorerOptions Down;
  Down.Cache = Shared;
  Down.Breakers = Breakers;
  Down.Estimator = [](const Kernel &,
                      const TargetPlatform &) -> Expected<SynthesisEstimate> {
    return Status::error(ErrorCode::EstimationFailed, "dead");
  };
  ExplorationResult Second = DesignSpaceExplorer(FIR, Down).run();
  EXPECT_FALSE(Second.Degraded) << Second.Trace;
  EXPECT_EQ(Second.Selected, First.Selected);
  EXPECT_EQ(Breakers->snapshot(Down.Platform.Name).FastFailures, 0u);
}

//===----------------------------------------------------------------------===//
// Bounded failure ring
//===----------------------------------------------------------------------===//

TEST(FailureRing, CapsTheLogAndCountsTheDropped) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.FailureRate = 1.0;
  FaultInjector Injector(FI);
  Clock.install(Injector);

  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  Opts.MaxRetries = 0;
  Opts.MaxFailureLogEntries = 2;
  // Exhaustive search pushes every candidate through the dead backend,
  // flooding the failure log well past its 2-entry cap.
  Expected<ExplorationResult> ROr =
      DesignSpaceExplorer(FIR, Opts).runWithStrategy("exhaustive");
  ASSERT_TRUE(ROr.hasValue());
  ExplorationResult R = *ROr;

  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.Failures.size(), 2u); // The ring's cap.
  EXPECT_GT(R.DroppedFailures, 0u);
  EXPECT_EQ(R.DroppedFailures + 2, Injector.counters().Failures);
}

TEST(FailureRing, KeepsTheMostRecentEntriesInOrder) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  unsigned Call = 0;
  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = [&Call](const Kernel &,
                           const TargetPlatform &)
      -> Expected<SynthesisEstimate> {
    return Status::error(ErrorCode::EstimationFailed,
                         "call " + std::to_string(Call++));
  };
  Opts.MaxRetries = 0;
  Opts.MaxFailureLogEntries = 3;
  Expected<ExplorationResult> ROr =
      DesignSpaceExplorer(FIR, Opts).runWithStrategy("exhaustive");
  ASSERT_TRUE(ROr.hasValue());
  ExplorationResult R = *ROr;

  // The retained entries are the chronologically last ones, oldest
  // first: their messages carry strictly increasing call numbers ending
  // at the final call.
  std::vector<unsigned> Seen;
  for (const EvaluationFailure &F : R.Failures)
    if (F.Error.code() == ErrorCode::EstimationFailed)
      Seen.push_back(static_cast<unsigned>(
          std::stoul(F.Error.message().substr(5))));
  ASSERT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Seen.back(), Call - 1);
  for (size_t I = 1; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I], Seen[I - 1] + 1);
}

TEST(FailureRing, DefaultBoundIsInvisibleToHealthyRuns) {
  Kernel FIR = buildKernel("FIR");
  ExplorationResult R = DesignSpaceExplorer(FIR, ExplorerOptions()).run();
  EXPECT_FALSE(R.Degraded);
  EXPECT_EQ(R.DroppedFailures, 0u);
}
