//===- fastpath_parity_test.cpp - Fast-path bit-identity guarantees -------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The evaluation fast path (--fast-path=on: arena clones, memoized
/// transform stages with a finished-candidate level, memoized
/// estimation) must not move a single bit of any exploration:
///
///   * the staged pipeline prints IR identical to applyPipeline() for
///     every paper kernel across unroll vectors and strip-mining;
///   * FastPathMode::Verify — which runs every candidate through both
///     routes and compares estimates field-exact (Cycles, Slices,
///     Registers, Balance as doubles, no tolerance) — never records a
///     parity violation across a 32-seed random fuzz of fig4–fig10;
///   * winners, estimates, visit tables, and decisionDigest() are
///     identical off vs on, at 1 and 8 worker threads;
///   * a warm TransformStageCache (candidates served from the
///     finished-kernel level, skipping every transform pass) still
///     reproduces the off-path digest bit-for-bit.
///
/// Also the IRArena unit contract the fast path leans on: arena clones
/// print identically to heap clones, reset() recycles blocks, and a
/// suspended scope (IRArenaScope(nullptr)) durably heap-allocates.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Core/TransformStageCache.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Arena.h"
#include "defacto/Support/Stats.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

uint64_t statValue(const char *Group, const char *Name) {
  for (const StatSnapshot &S : StatRegistry::instance().snapshot())
    if (S.Group == Group && S.Name == Name)
      return S.Value;
  return 0;
}

void expectEstimatesExact(const SynthesisEstimate &A,
                          const SynthesisEstimate &B) {
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Slices, B.Slices); // exact double equality, no tolerance
  EXPECT_EQ(A.Registers, B.Registers);
  EXPECT_EQ(A.Balance, B.Balance);
  EXPECT_EQ(A.FsmStates, B.FsmStates);
}

void expectIdentical(const ExplorationResult &A, const ExplorationResult &B) {
  EXPECT_EQ(A.Selected, B.Selected);
  expectEstimatesExact(A.SelectedEstimate, B.SelectedEstimate);
  expectEstimatesExact(A.BaselineEstimate, B.BaselineEstimate);
  EXPECT_EQ(A.SelectedFits, B.SelectedFits);
  EXPECT_EQ(A.EvaluationsUsed, B.EvaluationsUsed);
  ASSERT_EQ(A.Visited.size(), B.Visited.size());
  for (size_t I = 0; I != A.Visited.size(); ++I) {
    EXPECT_EQ(A.Visited[I].U, B.Visited[I].U);
    expectEstimatesExact(A.Visited[I].Estimate, B.Visited[I].Estimate);
  }
}

struct TracedRun {
  ExplorationResult Result;
  std::vector<std::string> Digest;
};

TracedRun runExhaustive(const std::string &Name, FastPathMode Mode,
                        unsigned Threads,
                        std::shared_ptr<TransformStageCache> Stages = nullptr) {
  auto Trace = std::make_shared<TraceRecorder>();
  Trace->setEnabled(true);
  ExplorerOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Trace = Trace;
  Opts.FastPath = Mode;
  Opts.StageCache = std::move(Stages);
  Kernel K = buildKernel(Name);
  ExplorationResult R = exploreExhaustive(K, Opts);
  return {std::move(R), Trace->decisionDigest()};
}

} // namespace

//===----------------------------------------------------------------------===//
// Staged pipeline == applyPipeline, printed-IR exact.
//===----------------------------------------------------------------------===//

TEST(FastpathParity, StagedPipelinePrintsIdenticalIR) {
  std::vector<TransformOptions> Configs;
  for (UnrollVector U : std::vector<UnrollVector>{
           {1}, {2}, {4}, {1, 2}, {2, 2}, {4, 2}, {2, 2, 2}, {1, 1, 4}}) {
    TransformOptions O;
    O.Unroll = std::move(U);
    Configs.push_back(O);
  }
  {
    // Strip-mining interacts with renormalization; the staged route must
    // either reproduce it exactly or fall back — both print identically.
    TransformOptions O;
    O.Unroll = {2, 2};
    O.StripMine = {{0, 4}};
    Configs.push_back(O);
    O.Unroll = {1, 2};
    O.StripMine = {{1, 4}};
    Configs.push_back(O);
  }

  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    PipelineContext Ctx(K);
    auto Cache = std::make_shared<TransformStageCache>();
    FastPathPipeline Fast(Ctx, Cache);
    for (const TransformOptions &Opts : Configs) {
      SCOPED_TRACE(Spec.Name + "/U=" + unrollVectorToString(Opts.Unroll) +
                   (Opts.StripMine ? "/stripmined" : ""));
      TransformResult Slow = applyPipeline(Ctx, Opts);
      // Twice: first populates the stage (and final) cache, second is
      // served from it — both must print like the unstaged pipeline.
      for (int Round = 0; Round != 2; ++Round) {
        SCOPED_TRACE(Round == 0 ? "cold" : "warm");
        TransformResult FastR = Fast.run(Opts);
        ASSERT_EQ(Slow.ok(), FastR.ok());
        if (Slow.ok()) {
          EXPECT_EQ(printKernel(Slow.K), printKernel(FastR.K));
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// 32-seed fuzz: Verify mode never finds an estimate mismatch.
//===----------------------------------------------------------------------===//

TEST(FastpathParity, VerifyModeNeverDivergesAcross32Seeds) {
  StatRegistry::instance().setEnabled(true);
  uint64_t Before = statValue("fastpath", "parity_violations");
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    for (unsigned Seed = 0; Seed != 32; ++Seed) {
      SCOPED_TRACE(Spec.Name + "/seed=" + std::to_string(Seed));
      ExplorerOptions Opts;
      Opts.FastPath = FastPathMode::Verify;
      ExplorationResult R = exploreRandom(K, Opts, /*Samples=*/6, Seed);
      EXPECT_FALSE(R.Visited.empty());
      ASSERT_EQ(statValue("fastpath", "parity_violations"), Before)
          << "fast path diverged from the reference path";
    }
  }
  StatRegistry::instance().setEnabled(false);
}

//===----------------------------------------------------------------------===//
// Winners and decision digests: off vs on, 1 and 8 threads.
//===----------------------------------------------------------------------===//

TEST(FastpathParity, ExhaustiveDigestIdenticalOffVsOn) {
  for (const KernelSpec &Spec : paperKernels())
    for (unsigned Threads : {1u, 8u}) {
      SCOPED_TRACE(Spec.Name + "/threads=" + std::to_string(Threads));
      TracedRun Off = runExhaustive(Spec.Name, FastPathMode::Off, Threads);
      TracedRun On = runExhaustive(Spec.Name, FastPathMode::On, Threads);
      ASSERT_FALSE(Off.Digest.empty());
      expectIdentical(Off.Result, On.Result);
      EXPECT_EQ(Off.Digest, On.Digest);
    }
}

TEST(FastpathParity, GuidedWalkIdenticalOffVsOn) {
  for (const KernelSpec &Spec : paperKernels())
    for (unsigned Threads : {1u, 8u}) {
      SCOPED_TRACE(Spec.Name + "/threads=" + std::to_string(Threads));
      auto run = [&](FastPathMode Mode) {
        auto Trace = std::make_shared<TraceRecorder>();
        Trace->setEnabled(true);
        ExplorerOptions Opts;
        Opts.NumThreads = Threads;
        Opts.Trace = Trace;
        Opts.FastPath = Mode;
        Kernel K = buildKernel(Spec.Name);
        ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
        return TracedRun{std::move(R), Trace->decisionDigest()};
      };
      TracedRun Off = run(FastPathMode::Off);
      TracedRun On = run(FastPathMode::On);
      ASSERT_FALSE(Off.Digest.empty());
      expectIdentical(Off.Result, On.Result);
      EXPECT_EQ(Off.Digest, On.Digest);
    }
}

//===----------------------------------------------------------------------===//
// Warm stage cache: the finished-kernel level reproduces the off path.
//===----------------------------------------------------------------------===//

TEST(FastpathParity, WarmFinalCacheReproducesOffDigest) {
  StatRegistry::instance().setEnabled(true);
  TracedRun Off = runExhaustive("MM", FastPathMode::Off, 1);

  auto Stages = std::make_shared<TransformStageCache>();
  TracedRun Cold = runExhaustive("MM", FastPathMode::On, 1, Stages);
  uint64_t HitsAfterCold = statValue("cache", "final_hits");
  TracedRun Warm = runExhaustive("MM", FastPathMode::On, 1, Stages);
  uint64_t HitsAfterWarm = statValue("cache", "final_hits");
  StatRegistry::instance().setEnabled(false);

  // The second sweep was actually served from the finished-kernel level —
  // otherwise this test would silently degrade into ExhaustiveDigest.
  EXPECT_GT(HitsAfterWarm, HitsAfterCold);

  expectIdentical(Off.Result, Cold.Result);
  expectIdentical(Off.Result, Warm.Result);
  EXPECT_EQ(Off.Digest, Cold.Digest);
  EXPECT_EQ(Off.Digest, Warm.Digest);
}

//===----------------------------------------------------------------------===//
// IRArena unit contract.
//===----------------------------------------------------------------------===//

TEST(FastpathArena, ArenaClonePrintsLikeHeapClone) {
  IRArena Arena;
  for (const KernelSpec &Spec : paperKernels()) {
    SCOPED_TRACE(Spec.Name);
    Kernel K = buildKernel(Spec.Name);
    Arena.reset();
    Kernel C = K.cloneInto(Arena);
    EXPECT_EQ(printKernel(K), printKernel(C));
    EXPECT_GT(Arena.bytesAllocated(), 0u);
  }
}

TEST(FastpathArena, ResetRecyclesBlocks) {
  IRArena Arena;
  Kernel K = buildKernel("MM");
  {
    Kernel C = K.cloneInto(Arena);
    (void)C;
  }
  size_t FirstBytes = Arena.bytesAllocated();
  Arena.reset();
  EXPECT_EQ(Arena.bytesAllocated(), 0u);
  {
    Kernel C = K.cloneInto(Arena);
    EXPECT_EQ(printKernel(K), printKernel(C));
  }
  // Same kernel, same footprint: blocks were recycled, not leaked.
  EXPECT_EQ(Arena.bytesAllocated(), FirstBytes);
}

TEST(FastpathArena, SuspendedScopeAllocatesDurably) {
  IRArena Arena;
  IRArenaScope Activate(&Arena);
  Kernel K = buildKernel("FIR");
  std::string Expected = printKernel(K);
  Kernel Durable = [&] {
    IRArenaScope Suspend(nullptr); // heap-allocate despite the active arena
    return K.clone();
  }();
  size_t BytesAtClone = Arena.bytesAllocated();
  Arena.reset(); // must not invalidate the suspended-scope clone
  EXPECT_EQ(printKernel(Durable), Expected);
  (void)BytesAtClone;
}
