//===- support_test.cpp - Unit tests for the support library -------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Diagnostics.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Random.h"
#include "defacto/Support/Table.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(MathExtras, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(18, 12), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(1, 999), 1);
  EXPECT_EQ(gcd64(64, 32), 32);
}

TEST(MathExtras, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(1, 4), 4);
  EXPECT_EQ(lcm64(3, 5), 15);
  EXPECT_EQ(lcm64(0, 5), 0);
  EXPECT_EQ(lcm64(-4, 6), 12);
}

TEST(MathExtras, Divisors) {
  EXPECT_EQ(divisorsOf(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(divisorsOf(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisorsOf(16), (std::vector<int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(divisorsOf(7), (std::vector<int64_t>{1, 7}));
  // Perfect square: the root appears once.
  EXPECT_EQ(divisorsOf(36),
            (std::vector<int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(MathExtras, CeilFloorDiv) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(8, 2), 4);
  EXPECT_EQ(ceilDiv(0, 3), 0);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(8, 4), 2);
}

TEST(MathExtras, IsPowerOf2) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_TRUE(isPowerOf2(1024));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(-4));
  EXPECT_FALSE(isPowerOf2(6));
}

TEST(Random, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, SeedsDiffer) {
  SplitMix64 A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 16; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Random, RangeBounds) {
  SplitMix64 Rng(7);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = Rng.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(Rng.nextBelow(10), 10u);
  for (int I = 0; I != 100; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Table, Alignment) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "23"});
  std::string S = T.toString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(S.begin(), S.end(), '\n'), 4);
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("------"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
  EXPECT_EQ(T.numColumns(), 2u);
}

TEST(Table, CsvEscaping) {
  Table T({"a", "b"});
  T.addRow({"plain", "has,comma"});
  T.addRow({"has\"quote", "x"});
  std::string Csv = T.toCsv();
  EXPECT_NE(Csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(Csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
  EXPECT_EQ(formatWithCommas(12288), "12,288");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(-1234567), "-1,234,567");
  EXPECT_EQ(formatWithCommas(0), "0");
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "a warning");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "an error");
  Diags.note({}, "a note");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
  std::string Text = Diags.toString();
  EXPECT_NE(Text.find("3:4: error: an error"), std::string::npos);
  EXPECT_NE(Text.find("1:2: warning: a warning"), std::string::npos);
  EXPECT_NE(Text.find("note: a note"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(Diagnostics, LocationRendering) {
  SourceLocation None;
  EXPECT_FALSE(None.isValid());
  EXPECT_EQ(None.toString(), "<no-loc>");
  SourceLocation Loc{10, 3};
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.toString(), "10:3");
}
