//===- extended_kernels_test.cpp - Extended kernel set tests --------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The paper's motivating application class (§2.4) is broader than the
/// five evaluated kernels: image correlation and erosion/dilation are
/// named explicitly. These tests run the full system over that extended
/// set, including a 4-deep nest (CORR) that stresses depth-generic code
/// paths everywhere.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

class ExtendedKernels : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST(ExtendedKernelSet, SpecsResolve) {
  EXPECT_EQ(extendedKernels().size(), 3u);
  EXPECT_NE(findKernelSpec("CORR"), nullptr);
  EXPECT_NE(findKernelSpec("DILATE"), nullptr);
  EXPECT_NE(findKernelSpec("ERODE"), nullptr);
  EXPECT_EQ(findKernelSpec("NOPE"), nullptr);
}

TEST_P(ExtendedKernels, ParsesAndVerifies) {
  Kernel K = buildKernel(GetParam());
  EXPECT_TRUE(isKernelValid(K));
  ASSERT_NE(K.topLoop(), nullptr);
}

TEST_P(ExtendedKernels, PipelinePreservesSemantics) {
  Kernel K = buildKernel(GetParam());
  auto Reference = simulate(K, 321);
  for (UnrollVector U : {UnrollVector{2, 2}, UnrollVector{4, 1},
                         UnrollVector{1, 4}}) {
    TransformOptions Opts;
    Opts.Unroll = U;
    TransformResult R = applyPipeline(K, Opts);
    EXPECT_TRUE(isKernelValid(R.K)) << unrollVectorToString(U);
    EXPECT_EQ(simulate(R.K, 321), Reference) << unrollVectorToString(U);
  }
}

TEST_P(ExtendedKernels, ExplorationSucceeds) {
  Kernel K = buildKernel(GetParam());
  ExplorerOptions Opts;
  ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
  EXPECT_TRUE(R.SelectedFits);
  EXPECT_GE(R.speedup(), 1.0);
  EXPECT_LT(R.fractionSearched(), 0.02);
  // The selected design still computes the right answer.
  TransformOptions TO;
  TO.Unroll = R.Selected;
  TransformResult Design = applyPipeline(K, TO);
  EXPECT_EQ(simulate(Design.K, 11), simulate(K, 11));
}

TEST(ExtendedKernels4Deep, CorrNestDepth) {
  Kernel CORR = buildKernel("CORR");
  ExplorerOptions Opts;
  DesignSpaceExplorer Ex(CORR, Opts);
  // Four loops, full space 16*16*4*4.
  EXPECT_EQ(Ex.space().numLoops(), 4u);
  EXPECT_EQ(Ex.space().fullSize(), 4096u);
  // The template loops (u, v) carry only register reuse; the image
  // loops provide the memory parallelism.
  EXPECT_TRUE(Ex.saturation().MemoryVarying[0]);
  EXPECT_TRUE(Ex.saturation().MemoryVarying[1]);
}

INSTANTIATE_TEST_SUITE_P(All, ExtendedKernels,
                         ::testing::Values("CORR", "DILATE", "ERODE"));
