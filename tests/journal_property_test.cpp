//===- journal_property_test.cpp - Journal round-trip fuzzing -------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests for the schema-v2 evaluation journal. Seeded
/// generators build evaluation records over the full generalized design
/// space — unroll-only keys, interchange permutations, strip-mined
/// tiles, explicit pipelines, register caps — carrying adversarial
/// doubles (infinities, signed zero, denormals, full-mantissa values)
/// and error results with hostile messages. The properties:
///
///  * write -> load -> replay recovers every double bit-for-bit;
///  * truncating the file at ANY byte offset (a torn write from a dying
///    filesystem) still loads: the intact prefix comes back bit-exact
///    and at most the one torn line is skipped;
///  * records from unknown schema versions are skipped, never fatal.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/EstimateCache.h"
#include "defacto/Core/EvaluationJournal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace defacto;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "defacto_" + Name;
}

bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

/// Seeded generator of adversarial journal records. Deterministic: a
/// failing seed reproduces byte-for-byte.
class Fuzzer {
public:
  explicit Fuzzer(uint64_t Seed) : Rng(Seed) {}

  /// Doubles hexfloat round-tripping must not mangle: the edges of the
  /// IEEE-754 lattice plus random bit patterns (NaN excluded — the
  /// journal never produces one, and its payload has no total order).
  double nastyDouble() {
    static const double Pool[] = {
        0.0,
        -0.0,
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon(),
        6183.0000000000009, // the serve-protocol regression value
        1.0 / 3.0,
        std::nextafter(1.0, 2.0),
        -1e-300,
    };
    if (draw(4) != 0)
      return Pool[draw(sizeof(Pool) / sizeof(Pool[0]))];
    for (;;) {
      uint64_t Bits = Rng();
      double D;
      std::memcpy(&D, &Bits, sizeof(D));
      if (!std::isnan(D))
        return D;
    }
  }

  /// A cache key somewhere in the generalized design space: every
  /// optional dimension toggled independently.
  std::string designKey() {
    uint64_t Fp = Rng();
    TargetPlatform Platform = draw(2) ? TargetPlatform::wildstarPipelined()
                                      : TargetPlatform::wildstarNonPipelined();
    TransformOptions Opts;
    if (draw(3) == 0)
      Opts.Interchange = {1, 0};
    if (draw(3) == 0)
      Opts.StripMine = {{static_cast<unsigned>(draw(2)),
                         static_cast<int64_t>(2 + draw(14))}};
    if (draw(4) == 0)
      Opts.Pipeline = "normalize,unroll";
    UnrollVector U;
    for (uint64_t P = 0, N = 1 + draw(3); P != N; ++P)
      U.push_back(static_cast<int64_t>(1 + draw(63)));
    std::optional<unsigned> Cap;
    if (draw(3) == 0)
      Cap = static_cast<unsigned>(1 + draw(4096));
    return designCacheKey(Fp, Platform, Opts, U, Cap);
  }

  SynthesisEstimate estimate() {
    SynthesisEstimate E;
    E.Cycles = Rng();
    E.Slices = nastyDouble();
    E.Registers = static_cast<unsigned>(Rng());
    for (uint64_t I = 0, N = draw(4); I != N; ++I)
      E.Units[{static_cast<OpClass>(draw(8)),
               static_cast<unsigned>(1 + draw(64))}] =
          static_cast<unsigned>(1 + draw(512));
    E.FetchRate = nastyDouble();
    E.ConsumeRate = nastyDouble();
    E.Balance = nastyDouble();
    E.MemOnlyCycles = nastyDouble();
    E.CompOnlyCycles = nastyDouble();
    E.BitsTransferred = nastyDouble();
    E.FsmStates = Rng();
    return E;
  }

  /// Messages exercising every jsonQuote escape class.
  std::string hostileMessage() {
    static const char *Pool[] = {
        "plain failure",
        "quote \" backslash \\ brace { bracket [",
        "newline\nand\ttab\rand\x01control",
        "trailing backslash \\",
        "{\"type\":\"eval\"} — a message that looks like a record",
    };
    return Pool[draw(sizeof(Pool) / sizeof(Pool[0]))];
  }

  EstimateCache::Result result() {
    if (draw(4) == 0) {
      static const ErrorCode Codes[] = {ErrorCode::EstimationFailed,
                                        ErrorCode::InvalidInput,
                                        ErrorCode::MalformedIR};
      return {Expected<SynthesisEstimate>(
                  Status::error(Codes[draw(3)], hostileMessage())),
              static_cast<unsigned>(1 + draw(7))};
    }
    return {Expected<SynthesisEstimate>(estimate()),
            static_cast<unsigned>(1 + draw(7))};
  }

  JournalJobRecord job(unsigned Index) {
    JournalJobRecord J;
    J.Name = "job \"" + std::to_string(Index) + "\" \\ " + hostileMessage();
    J.Strategy = draw(2) ? "guided" : "random";
    J.Selected = "(16, 8)";
    J.Cycles = Rng();
    J.Slices = nastyDouble();
    J.Evaluations = static_cast<unsigned>(draw(5000));
    J.Degraded = draw(2) != 0;
    J.Fits = draw(2) != 0;
    return J;
  }

  uint64_t draw(uint64_t Bound) { return Rng() % Bound; }

private:
  std::mt19937_64 Rng;
};

void expectResultsBitIdentical(const EstimateCache::Result &Got,
                               const EstimateCache::Result &Want,
                               const std::string &Key) {
  EXPECT_EQ(Got.Attempts, Want.Attempts) << Key;
  ASSERT_EQ(Got.ok(), Want.ok()) << Key;
  if (!Want.ok()) {
    EXPECT_EQ(Got.Estimate.status().code(), Want.Estimate.status().code())
        << Key;
    EXPECT_EQ(Got.Estimate.status().message(),
              Want.Estimate.status().message())
        << Key;
    return;
  }
  const SynthesisEstimate &G = Got.Estimate.value();
  const SynthesisEstimate &W = Want.Estimate.value();
  EXPECT_EQ(G.Cycles, W.Cycles) << Key;
  EXPECT_TRUE(sameBits(G.Slices, W.Slices)) << Key;
  EXPECT_EQ(G.Registers, W.Registers) << Key;
  EXPECT_EQ(G.Units, W.Units) << Key;
  EXPECT_TRUE(sameBits(G.FetchRate, W.FetchRate)) << Key;
  EXPECT_TRUE(sameBits(G.ConsumeRate, W.ConsumeRate)) << Key;
  EXPECT_TRUE(sameBits(G.Balance, W.Balance)) << Key;
  EXPECT_TRUE(sameBits(G.MemOnlyCycles, W.MemOnlyCycles)) << Key;
  EXPECT_TRUE(sameBits(G.CompOnlyCycles, W.CompOnlyCycles)) << Key;
  EXPECT_TRUE(sameBits(G.BitsTransferred, W.BitsTransferred)) << Key;
  EXPECT_EQ(G.FsmStates, W.FsmStates) << Key;
}

/// Populates \p J with \p NumEvals unique evaluations and \p NumJobs
/// jobs from \p Fz; returns the evaluation records in insertion order.
std::vector<std::pair<std::string, EstimateCache::Result>>
populate(EvaluationJournal &J, Fuzzer &Fz, unsigned NumEvals,
         unsigned NumJobs) {
  std::vector<std::pair<std::string, EstimateCache::Result>> Written;
  std::map<std::string, bool> Seen;
  while (Written.size() != NumEvals) {
    std::string Key = Fz.designKey();
    if (Seen.count(Key))
      continue; // Random collision: the journal keeps first-write-wins.
    Seen[Key] = true;
    EstimateCache::Result R = Fz.result();
    J.recordEvaluation(Key, R);
    Written.emplace_back(std::move(Key), std::move(R));
  }
  for (unsigned I = 0; I != NumJobs; ++I)
    J.recordJob(Fz.job(I));
  return Written;
}

//===----------------------------------------------------------------------===//
// Property 1: write -> load -> replay is bit-exact
//===----------------------------------------------------------------------===//

TEST(JournalProperty, RoundTripIsBitExactAcrossTheDesignSpace) {
  for (uint64_t Seed : {1ull, 7ull, 20260808ull}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    std::string Path =
        tempPath("journal_prop_rt_" + std::to_string(Seed) + ".jsonl");
    std::remove(Path.c_str());
    Fuzzer Fz(Seed);
    std::vector<std::pair<std::string, EstimateCache::Result>> Written;
    std::vector<JournalJobRecord> Jobs;
    {
      EvaluationJournal J(Path);
      Written = populate(J, Fz, 40, 6);
      Fuzzer JobFz(Seed ^ 0x9e3779b97f4a7c15ull);
      for (unsigned I = 0; I != 6; ++I)
        Jobs.push_back(JobFz.job(I));
      for (const JournalJobRecord &Job : Jobs)
        J.recordJob(Job); // Same-name records replace: last write wins.
    }

    Expected<EvaluationJournal::Contents> Loaded =
        EvaluationJournal::load(Path);
    ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().message();
    const EvaluationJournal::Contents &C = Loaded.value();
    EXPECT_EQ(C.SkippedLines, 0u);
    ASSERT_EQ(C.Evaluations.size(), Written.size());
    for (size_t I = 0; I != Written.size(); ++I) {
      EXPECT_EQ(C.Evaluations[I].first, Written[I].first)
          << "insertion order not preserved at " << I;
      expectResultsBitIdentical(C.Evaluations[I].second, Written[I].second,
                                Written[I].first);
    }
    for (const JournalJobRecord &Want : Jobs) {
      const JournalJobRecord *Got = nullptr;
      for (const JournalJobRecord &J : C.Jobs)
        if (J.Name == Want.Name)
          Got = &J;
      ASSERT_NE(Got, nullptr) << Want.Name;
      EXPECT_EQ(Got->Strategy, Want.Strategy);
      EXPECT_EQ(Got->Selected, Want.Selected);
      EXPECT_EQ(Got->Cycles, Want.Cycles);
      EXPECT_TRUE(sameBits(Got->Slices, Want.Slices)) << Want.Name;
      EXPECT_EQ(Got->Evaluations, Want.Evaluations);
      EXPECT_EQ(Got->Degraded, Want.Degraded);
      EXPECT_EQ(Got->Fits, Want.Fits);
    }

    // Replay seeds every record exactly once; a second replay into the
    // same cache inserts nothing (first write wins).
    EvaluationJournal Resumed(Path + ".resumed");
    Resumed.adopt(C);
    EstimateCache Cache;
    EXPECT_EQ(Resumed.replayInto(Cache), Written.size());
    EXPECT_EQ(Resumed.replayInto(Cache), 0u);
    std::remove(Path.c_str());
    std::remove((Path + ".resumed").c_str());
  }
}

//===----------------------------------------------------------------------===//
// Property 2: torn-write truncation never corrupts the prefix
//===----------------------------------------------------------------------===//

TEST(JournalProperty, TornTailTruncationNeverCorruptsThePrefix) {
  std::string Path = tempPath("journal_prop_torn.jsonl");
  std::string TornPath = tempPath("journal_prop_torn_cut.jsonl");
  std::remove(Path.c_str());
  Fuzzer Fz(0xfeedull);
  std::vector<std::pair<std::string, EstimateCache::Result>> Written;
  {
    EvaluationJournal J(Path);
    Written = populate(J, Fz, 25, 3);
  }
  std::string Bytes = readFile(Path);
  ASSERT_FALSE(Bytes.empty());

  // Every structurally interesting offset plus a seeded random sample:
  // 0 (empty file), each newline boundary (clean prefixes), mid-line
  // cuts, and the full file.
  std::vector<size_t> Offsets = {0, Bytes.size()};
  for (size_t I = 0; I != Bytes.size(); ++I)
    if (Bytes[I] == '\n')
      Offsets.push_back(I + 1);
  std::mt19937_64 Rng(0xc0ffeeull);
  for (int I = 0; I != 64; ++I)
    Offsets.push_back(Rng() % Bytes.size());

  for (size_t Offset : Offsets) {
    SCOPED_TRACE("truncated at byte " + std::to_string(Offset) + " of " +
                 std::to_string(Bytes.size()));
    writeFile(TornPath, Bytes.substr(0, Offset));
    Expected<EvaluationJournal::Contents> Loaded =
        EvaluationJournal::load(TornPath);
    ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().message();
    const EvaluationJournal::Contents &C = Loaded.value();
    // At most the one torn line is lost — never a parsed-but-wrong
    // record, never a hard failure.
    EXPECT_LE(C.SkippedLines, 1u);
    ASSERT_LE(C.Evaluations.size(), Written.size());
    for (size_t I = 0; I != C.Evaluations.size(); ++I) {
      EXPECT_EQ(C.Evaluations[I].first, Written[I].first)
          << "recovered set is not a prefix";
      expectResultsBitIdentical(C.Evaluations[I].second, Written[I].second,
                                Written[I].first);
    }
  }

  // Truncating at the full size is the identity load.
  writeFile(TornPath, Bytes);
  Expected<EvaluationJournal::Contents> Full =
      EvaluationJournal::load(TornPath);
  ASSERT_TRUE(Full.hasValue());
  EXPECT_EQ(Full.value().Evaluations.size(), Written.size());
  EXPECT_EQ(Full.value().SkippedLines, 0u);
  std::remove(Path.c_str());
  std::remove(TornPath.c_str());
}

TEST(JournalProperty, AdoptingATornLoadCompactsToACleanJournal) {
  std::string Path = tempPath("journal_prop_compact.jsonl");
  std::string CleanPath = tempPath("journal_prop_compact_clean.jsonl");
  std::remove(Path.c_str());
  Fuzzer Fz(0xdadull);
  std::vector<std::pair<std::string, EstimateCache::Result>> Written;
  {
    EvaluationJournal J(Path);
    Written = populate(J, Fz, 12, 2);
  }
  // Tear the file mid-final-line.
  std::string Bytes = readFile(Path);
  writeFile(Path, Bytes.substr(0, Bytes.size() - 7));

  Expected<EvaluationJournal::Contents> Torn = EvaluationJournal::load(Path);
  ASSERT_TRUE(Torn.hasValue());
  ASSERT_EQ(Torn.value().SkippedLines, 1u);

  // Adopt + flush = compaction: the rewritten journal re-loads with
  // zero skipped lines and the identical records.
  EvaluationJournal Clean(CleanPath);
  Clean.adopt(Torn.value());
  ASSERT_TRUE(Clean.flush().isOk());
  Expected<EvaluationJournal::Contents> Reloaded =
      EvaluationJournal::load(CleanPath);
  ASSERT_TRUE(Reloaded.hasValue());
  EXPECT_EQ(Reloaded.value().SkippedLines, 0u);
  ASSERT_EQ(Reloaded.value().Evaluations.size(),
            Torn.value().Evaluations.size());
  for (size_t I = 0; I != Reloaded.value().Evaluations.size(); ++I) {
    EXPECT_EQ(Reloaded.value().Evaluations[I].first,
              Torn.value().Evaluations[I].first);
    expectResultsBitIdentical(Reloaded.value().Evaluations[I].second,
                              Torn.value().Evaluations[I].second,
                              Reloaded.value().Evaluations[I].first);
  }
  std::remove(Path.c_str());
  std::remove(CleanPath.c_str());
}

//===----------------------------------------------------------------------===//
// Property 3: unknown schema versions skip, never fail
//===----------------------------------------------------------------------===//

TEST(JournalProperty, UnknownVersionAndShapeLinesAreSkippedNotFatal) {
  std::string Path = tempPath("journal_prop_version.jsonl");
  std::remove(Path.c_str());
  Fuzzer Fz(0xabcull);
  std::vector<std::pair<std::string, EstimateCache::Result>> Written;
  {
    EvaluationJournal J(Path);
    Written = populate(J, Fz, 5, 1);
  }
  std::vector<std::string> Lines;
  {
    std::ifstream In(Path);
    for (std::string Line; std::getline(In, Line);)
      Lines.push_back(Line);
  }
  ASSERT_FALSE(Lines.empty());
  // A journal written by some future build: its header version is
  // unknown, and it carries a record type this build has never seen.
  Lines[0] = "{\"type\":\"header\",\"version\":\"3\"}";
  Lines.insert(Lines.begin() + 1, "{\"type\":\"wizard\",\"spell\":\"fireball\"}");
  Lines.insert(Lines.begin() + 2, ""); // Blank lines are ignored outright.
  {
    std::ofstream Out(Path, std::ios::trunc);
    for (const std::string &L : Lines)
      Out << L << '\n';
  }

  Expected<EvaluationJournal::Contents> Loaded = EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().message();
  // The v3 header and the wizard record are skipped; every record shape
  // this build knows still loads bit-exact.
  EXPECT_EQ(Loaded.value().SkippedLines, 2u);
  ASSERT_EQ(Loaded.value().Evaluations.size(), Written.size());
  for (size_t I = 0; I != Written.size(); ++I)
    expectResultsBitIdentical(Loaded.value().Evaluations[I].second,
                              Written[I].second, Written[I].first);
  EXPECT_EQ(Loaded.value().Jobs.size(), 1u);
  std::remove(Path.c_str());
}

TEST(JournalProperty, VersionOneJournalsLoadWithoutSkips) {
  // Unroll-only keys are byte-identical across v1 and v2; a v1 header
  // must load clean so pre-upgrade journals keep resuming.
  std::string Path = tempPath("journal_prop_v1.jsonl");
  std::remove(Path.c_str());
  Fuzzer Fz(0x11ull);
  {
    EvaluationJournal J(Path);
    populate(J, Fz, 4, 0);
  }
  std::vector<std::string> Lines;
  {
    std::ifstream In(Path);
    for (std::string Line; std::getline(In, Line);)
      Lines.push_back(Line);
  }
  Lines[0] = "{\"type\":\"header\",\"version\":\"1\"}";
  {
    std::ofstream Out(Path, std::ios::trunc);
    for (const std::string &L : Lines)
      Out << L << '\n';
  }
  Expected<EvaluationJournal::Contents> Loaded = EvaluationJournal::load(Path);
  ASSERT_TRUE(Loaded.hasValue());
  EXPECT_EQ(Loaded.value().SkippedLines, 0u);
  EXPECT_EQ(Loaded.value().Evaluations.size(), 4u);
  std::remove(Path.c_str());
}

TEST(JournalProperty, MissingJournalLoadsEmpty) {
  Expected<EvaluationJournal::Contents> Loaded =
      EvaluationJournal::load(tempPath("journal_prop_never_written.jsonl"));
  ASSERT_TRUE(Loaded.hasValue());
  EXPECT_TRUE(Loaded.value().Evaluations.empty());
  EXPECT_TRUE(Loaded.value().Jobs.empty());
  EXPECT_EQ(Loaded.value().SkippedLines, 0u);
}

} // namespace
