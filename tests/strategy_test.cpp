//===- strategy_test.cpp - Strategy registry and new strategies -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the pluggable-search layer: StrategyRegistry lookup and
/// extension, the hill-climbing strategy (quality, determinism, budget
/// discipline), the portfolio strategy (budget split, per-kernel winner
/// selection, sub-result reporting), and graceful degradation of both
/// under injected estimator faults.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/ExplorationReport.h"
#include "defacto/Core/Explorer.h"
#include "defacto/Core/SearchStrategy.h"
#include "defacto/HLS/FaultInjector.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace defacto;

namespace {

Expected<ExplorationResult> runNamed(const std::string &Kernel,
                                     const std::string &Strategy,
                                     ExplorerOptions Opts = {}) {
  return exploreWithStrategy(buildKernel(Kernel), std::move(Opts), Strategy);
}

/// Shared virtual time so fault stalls and deadlines are instant.
struct VirtualClock {
  double Now = 0;
  void install(ExplorerOptions &Opts) {
    Opts.Clock = [this] { return Now; };
    Opts.Sleep = [this](double S) { Now += S; };
  }
  void install(FaultInjector &Inj) {
    Inj.Sleep = [this](double S) { Now += S; };
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// StrategyRegistry
//===----------------------------------------------------------------------===//

TEST(StrategyRegistry, BuiltinsAreRegistered) {
  StrategyRegistry &R = StrategyRegistry::instance();
  for (const char *Name :
       {"guided", "exhaustive", "random", "hillclimb", "portfolio"}) {
    EXPECT_TRUE(R.contains(Name)) << Name;
    std::unique_ptr<SearchStrategy> S = R.create(Name);
    ASSERT_NE(S, nullptr) << Name;
    EXPECT_EQ(S->name(), Name);
  }
  std::vector<std::string> Names = R.names();
  EXPECT_GE(Names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
}

TEST(StrategyRegistry, UnknownNameFailsLoudly) {
  StrategyRegistry &R = StrategyRegistry::instance();
  EXPECT_FALSE(R.contains("simulated-annealing"));
  EXPECT_EQ(R.create("simulated-annealing"), nullptr);

  Expected<ExplorationResult> Res = runNamed("FIR", "simulated-annealing");
  ASSERT_FALSE(static_cast<bool>(Res));
  // The error names every registered strategy so drivers can print it.
  EXPECT_NE(Res.status().message().find("guided"), std::string::npos);
  EXPECT_NE(Res.status().message().find("portfolio"), std::string::npos);
}

namespace {

/// A caller-registered strategy: always picks the baseline design.
class BaselineOnlyStrategy : public SearchStrategy {
public:
  std::string name() const override { return "baseline-only"; }
  ExplorationResult search(const SearchContext &SC) override {
    ExplorationResult Res;
    Res.Strategy = name();
    UnrollVector Base = SC.Eval.space().base();
    if (Expected<SynthesisEstimate> Est = SC.Eval.evaluateChecked(Base)) {
      Res.Selected = Base;
      Res.SelectedEstimate = *Est;
      Res.BaselineEstimate = *Est;
      Res.SelectedFits = Est->Slices <= SC.Opts.Platform.CapacitySlices;
      Res.Visited.push_back({Base, *Est, "baseline", DesignPoint(Base)});
    } else {
      Res.Degraded = true;
    }
    Res.EvaluationsUsed = SC.Eval.evaluationsUsed();
    Res.FullSpaceSize = SC.Eval.space().fullSize();
    return Res;
  }
};

} // namespace

TEST(StrategyRegistry, CallersCanRegisterCustomStrategies) {
  StrategyRegistry &R = StrategyRegistry::instance();
  bool Added = R.add("baseline-only", "always selects the baseline design",
                     [] { return std::make_unique<BaselineOnlyStrategy>(); });
  // A second registration under the same name is rejected, not clobbered.
  EXPECT_FALSE(R.add("baseline-only", "dup",
                     [] { return std::make_unique<BaselineOnlyStrategy>(); }));
  if (Added) {
    EXPECT_NE(R.describe().find("baseline-only"), std::string::npos);
    Expected<ExplorationResult> Res = runNamed("FIR", "baseline-only");
    ASSERT_TRUE(static_cast<bool>(Res));
    EXPECT_EQ(Res->Strategy, "baseline-only");
    EXPECT_EQ(Res->Selected, UnrollVector(Res->Selected.size(), 1));
    EXPECT_EQ(Res->EvaluationsUsed, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Hill climbing
//===----------------------------------------------------------------------===//

TEST(HillClimb, SelectsALocalOptimumNoWorseThanItsStart) {
  for (const KernelSpec &Spec : paperKernels()) {
    SCOPED_TRACE(Spec.Name);
    Expected<ExplorationResult> Res = runNamed(Spec.Name, "hillclimb");
    ASSERT_TRUE(static_cast<bool>(Res));
    EXPECT_EQ(Res->Strategy, "hillclimb");
    EXPECT_TRUE(Res->SelectedFits);
    EXPECT_FALSE(Res->Degraded);

    // The climb starts at the guided Uinit; the selection is the best
    // fitting design it evaluated, so it can never lose to its start.
    const EvaluatedDesign *Start = nullptr;
    for (const EvaluatedDesign &V : Res->Visited)
      if (V.Role == "start")
        Start = &V;
    ASSERT_NE(Start, nullptr);
    EXPECT_LE(Res->SelectedEstimate.Cycles, Start->Estimate.Cycles);
    // Self-consistency: nothing fitting in the visit log beats it.
    for (const EvaluatedDesign &V : Res->Visited)
      if (V.Estimate.Slices <= ExplorerOptions{}.Platform.CapacitySlices) {
        EXPECT_GE(V.Estimate.Cycles, Res->SelectedEstimate.Cycles);
      }
  }
}

TEST(HillClimb, IsDeterministic) {
  Expected<ExplorationResult> A = runNamed("JAC", "hillclimb");
  Expected<ExplorationResult> B = runNamed("JAC", "hillclimb");
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(A->Selected, B->Selected);
  EXPECT_EQ(A->Trace, B->Trace);
  EXPECT_EQ(A->EvaluationsUsed, B->EvaluationsUsed);
}

TEST(HillClimb, RespectsEvaluationBudget) {
  ExplorerOptions Opts;
  Opts.MaxEvaluations = 4;
  Expected<ExplorationResult> Res = runNamed("MM", "hillclimb", Opts);
  ASSERT_TRUE(static_cast<bool>(Res));
  EXPECT_LE(Res->EvaluationsUsed, 4u);
  // Running out of budget mid-climb is a degradation, and the log says so.
  EXPECT_TRUE(Res->Degraded);
  EXPECT_FALSE(Res->Failures.empty());
}

TEST(HillClimb, DegradesGracefullyUnderTotalEstimatorFailure) {
  ExplorerOptions Opts;
  VirtualClock Clock;
  Clock.install(Opts);
  FaultInjector Injector(FaultInjectorOptions{.Seed = 7, .FailureRate = 1.0});
  Clock.install(Injector);
  Opts.Estimator = Injector.wrapDefault();
  Opts.MaxRetries = 1;
  Expected<ExplorationResult> Res = runNamed("FIR", "hillclimb", Opts);
  ASSERT_TRUE(static_cast<bool>(Res));
  EXPECT_TRUE(Res->Degraded);
  EXPECT_FALSE(Res->SelectedFits);
  EXPECT_FALSE(Res->Failures.empty());
}

//===----------------------------------------------------------------------===//
// Portfolio
//===----------------------------------------------------------------------===//

TEST(Portfolio, SplitsTheBudgetAcrossSubStrategies) {
  ExplorerOptions Opts;
  Opts.MaxEvaluations = 30; // Three default sub-strategies -> 10 each.
  Expected<ExplorationResult> Res = runNamed("FIR", "portfolio", Opts);
  ASSERT_TRUE(static_cast<bool>(Res));
  ASSERT_EQ(Res->SubResults.size(), 3u);
  unsigned Sum = 0;
  for (const ExplorationResult &Sub : Res->SubResults) {
    EXPECT_LE(Sub.EvaluationsUsed, 10u) << Sub.Strategy;
    Sum += Sub.EvaluationsUsed;
  }
  EXPECT_EQ(Res->EvaluationsUsed, Sum);
  EXPECT_LE(Res->EvaluationsUsed, 30u);
}

TEST(Portfolio, SelectsThePerKernelWinner) {
  for (const KernelSpec &Spec : paperKernels()) {
    SCOPED_TRACE(Spec.Name);
    Expected<ExplorationResult> Res = runNamed(Spec.Name, "portfolio");
    ASSERT_TRUE(static_cast<bool>(Res));
    EXPECT_EQ(Res->Strategy, "portfolio");
    ASSERT_FALSE(Res->SubResults.empty());
    EXPECT_TRUE(Res->SelectedFits);

    // The selection is copied from one sub-result, and no fitting
    // sub-result is faster than it.
    bool FoundWinner = false;
    for (const ExplorationResult &Sub : Res->SubResults) {
      if (Sub.SelectedFits) {
        EXPECT_GE(Sub.SelectedEstimate.Cycles, Res->SelectedEstimate.Cycles)
            << Sub.Strategy;
      }
      if (Sub.Selected == Res->Selected &&
          Sub.SelectedEstimate.Cycles == Res->SelectedEstimate.Cycles)
        FoundWinner = true;
    }
    EXPECT_TRUE(FoundWinner);
    EXPECT_NE(Res->Trace.find("portfolio winner:"), std::string::npos);
  }
}

TEST(Portfolio, BeatsOrMatchesGuidedOnEveryPaperKernel) {
  // The SoberDSE claim: per-kernel algorithm selection never loses to any
  // single member strategy, since guided is in the portfolio.
  for (const KernelSpec &Spec : paperKernels()) {
    SCOPED_TRACE(Spec.Name);
    Expected<ExplorationResult> Guided = runNamed(Spec.Name, "guided");
    Expected<ExplorationResult> Port = runNamed(Spec.Name, "portfolio");
    ASSERT_TRUE(static_cast<bool>(Guided));
    ASSERT_TRUE(static_cast<bool>(Port));
    EXPECT_LE(Port->SelectedEstimate.Cycles, Guided->SelectedEstimate.Cycles);
  }
}

TEST(Portfolio, DegradesGracefullyUnderInjectedFaults) {
  ExplorerOptions Opts;
  VirtualClock Clock;
  Clock.install(Opts);
  FaultInjector Injector(
      FaultInjectorOptions{.Seed = 42, .FailureRate = 1.0});
  Clock.install(Injector);
  Opts.Estimator = Injector.wrapDefault();
  Opts.MaxRetries = 0;
  Expected<ExplorationResult> Res = runNamed("PAT", "portfolio", Opts);
  ASSERT_TRUE(static_cast<bool>(Res));
  EXPECT_TRUE(Res->Degraded);
  EXPECT_FALSE(Res->SelectedFits);
  for (const ExplorationResult &Sub : Res->SubResults)
    EXPECT_TRUE(Sub.Degraded) << Sub.Strategy;
}

TEST(Portfolio, ReportRendersPerStrategySections) {
  Expected<ExplorationResult> Res = runNamed("FIR", "portfolio");
  ASSERT_TRUE(static_cast<bool>(Res));
  EXPECT_NE(Res->toString().find("strategy=portfolio"), std::string::npos);
  std::string Report = renderExplorationReport(*Res, "FIR portfolio");
  EXPECT_NE(Report.find("Strategy: portfolio"), std::string::npos);
  for (const ExplorationResult &Sub : Res->SubResults)
    EXPECT_NE(Report.find("--- strategy " + Sub.Strategy), std::string::npos)
        << Sub.Strategy;
  EXPECT_NE(Report.find("[winner]"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Batch integration
//===----------------------------------------------------------------------===//

TEST(BatchStrategies, JobsRouteThroughTheRegistry) {
  BatchExplorer Engine;
  for (const char *Name : {"guided", "hillclimb", "portfolio"}) {
    ExplorerOptions Opts;
    Engine.addJob(BatchJob(Name, buildKernel("FIR"), std::move(Opts), Name));
  }
  std::vector<BatchResult> Results = Engine.runAll();
  ASSERT_EQ(Results.size(), 3u);
  for (const BatchResult &R : Results) {
    EXPECT_EQ(R.Result.Strategy, R.Name);
    EXPECT_TRUE(R.Result.SelectedFits);
  }
}

TEST(BatchStrategies, UnknownStrategyFallsBackToGuided) {
  BatchExplorer Engine;
  ExplorerOptions Opts;
  Engine.addJob(BatchJob("job", buildKernel("MM"), std::move(Opts), "bogus"));
  std::vector<BatchResult> Results = Engine.runAll();
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].Result.Strategy, "guided");
  EXPECT_NE(Results[0].Result.Trace.find("unknown strategy 'bogus'"),
            std::string::npos);
}
