//===- metrics_test.cpp - Live telemetry layer tests ----------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The live-telemetry contract: the histogram bucket layout and quantile
/// determinism (Support/Histogram.h), concurrent recording, the
/// MetricsSampler's JSONL/OpenMetrics output driven by a fake clock, the
/// OpenMetrics validator itself, and end-to-end agreement — the final
/// sample must report exactly what StatRegistry and EstimateCache::stats()
/// report after a real exploration.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/CommandLine.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/Json.h"
#include "defacto/Support/MetricsSampler.h"
#include "defacto/Support/OpenMetrics.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace defacto;

namespace {

uint64_t counterValue(const std::string &Group, const std::string &Name) {
  for (const StatSnapshot &S : StatRegistry::instance().snapshot())
    if (S.Group == Group && S.Name == Name)
      return S.Value;
  return 0;
}

/// Every test runs with recording on and a clean histogram registry;
/// the previous enable state is restored afterwards.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasEnabled = StatRegistry::instance().enabled();
    StatRegistry::instance().setEnabled(true);
    HistogramRegistry::global().reset();
  }
  void TearDown() override {
    HistogramRegistry::global().reset();
    StatRegistry::instance().setEnabled(WasEnabled);
  }
  std::string tempPath(const std::string &Leaf) {
    return ::testing::TempDir() + "defacto_metrics_" + Leaf;
  }
  bool WasEnabled = false;
};

//===--------------------------------------------------------------===//
// Histogram bucket layout.
//===--------------------------------------------------------------===//

TEST_F(MetricsTest, BucketBoundsAreContiguousAndMonotonic) {
  for (unsigned I = 0; I + 1 < Histogram::NumBuckets; ++I) {
    EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketBound(I)), I)
        << "bucket " << I;
    EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketBound(I) + 1), I + 1)
        << "bucket " << I;
  }
}

TEST_F(MetricsTest, SmallValuesAreExact) {
  // Values below 2^(SubBits+1) land in single-value buckets.
  for (uint64_t V = 0; V < (uint64_t{2} << Histogram::SubBits); ++V)
    EXPECT_EQ(Histogram::bucketBound(Histogram::bucketIndex(V)), V);
}

TEST_F(MetricsTest, BucketErrorIsBoundedByEighth) {
  // Log-linear layout: a bucket's upper bound overstates any member by
  // at most 1/2^SubBits (12.5%).
  for (uint64_t V : {uint64_t{17}, uint64_t{100}, uint64_t{999},
                     uint64_t{1} << 20, (uint64_t{1} << 40) + 12345}) {
    uint64_t Bound = Histogram::bucketBound(Histogram::bucketIndex(V));
    EXPECT_GE(Bound, V);
    EXPECT_LE(Bound - V, V / 8) << "value " << V;
  }
}

//===--------------------------------------------------------------===//
// Quantiles.
//===--------------------------------------------------------------===//

TEST_F(MetricsTest, QuantilesOfExactValues) {
  Histogram H("q");
  for (uint64_t V = 0; V < 16; ++V)
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 16u);
  EXPECT_EQ(S.Sum, 120u);
  EXPECT_DOUBLE_EQ(S.mean(), 7.5);
  EXPECT_EQ(S.quantile(0.5), 7u);  // ceil(0.5*16) = 8th smallest = 7
  EXPECT_EQ(S.quantile(1.0), 15u);
}

TEST_F(MetricsTest, QuantileClampsToRecordedMax) {
  Histogram H("clamp");
  H.record(1);
  H.record(1000000);
  HistogramSnapshot S = H.snapshot();
  // The top bucket's bound overshoots 1e6; the quantile must report the
  // exact recorded maximum instead.
  EXPECT_EQ(S.quantile(0.99), 1000000u);
  EXPECT_EQ(S.Max, 1000000u);
  EXPECT_EQ(S.quantile(0.5), 1u);
}

TEST_F(MetricsTest, EmptyHistogramIsZero) {
  Histogram H("empty");
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST_F(MetricsTest, DisabledRecordingIsANoOp) {
  StatRegistry::instance().setEnabled(false);
  Histogram H("off");
  H.record(42);
  EXPECT_EQ(H.count(), 0u);
  StatRegistry::instance().setEnabled(true);
  H.record(42);
  EXPECT_EQ(H.count(), 1u);
}

TEST_F(MetricsTest, MergeAddsDistributions) {
  Histogram A("a"), B("b");
  for (uint64_t V = 0; V < 8; ++V)
    A.record(V);
  for (uint64_t V = 8; V < 16; ++V)
    B.record(V);
  HistogramSnapshot S = A.snapshot();
  S.merge(B.snapshot());
  EXPECT_EQ(S.Count, 16u);
  EXPECT_EQ(S.Sum, 120u);
  EXPECT_EQ(S.quantile(0.5), 7u);
  EXPECT_EQ(S.Max, 15u);
}

TEST_F(MetricsTest, ConcurrentRecordingIsDeterministic) {
  // Many threads recording one multiset must yield exactly the counts
  // (and therefore quantiles) of a single-threaded recording of the
  // same multiset — the tsan job runs this under the race detector.
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 10000;
  Histogram Concurrent("conc"), Reference("ref");
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Concurrent] {
      for (uint64_t J = 0; J != PerThread; ++J)
        Concurrent.record(J % 997);
    });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned T = 0; T != NumThreads; ++T)
    for (uint64_t J = 0; J != PerThread; ++J)
      Reference.record(J % 997);

  HistogramSnapshot C = Concurrent.snapshot(), R = Reference.snapshot();
  EXPECT_EQ(C.Count, NumThreads * PerThread);
  EXPECT_EQ(C.Count, R.Count);
  EXPECT_EQ(C.Sum, R.Sum);
  EXPECT_EQ(C.Max, R.Max);
  EXPECT_EQ(C.Buckets, R.Buckets);
  for (double Q : {0.5, 0.9, 0.99})
    EXPECT_EQ(C.quantile(Q), R.quantile(Q));
}

TEST_F(MetricsTest, ScopedTimerRecordsMicroseconds) {
  Histogram &H = HistogramRegistry::global().histogram("test.scope_us");
  uint64_t Before = H.count();
  {
    DEFACTO_SCOPED_HISTOGRAM_US("test.scope_us");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(H.count(), Before + 1);
  EXPECT_GE(H.snapshot().Max, 1000u); // slept >= 1ms = 1000us
}

//===--------------------------------------------------------------===//
// OpenMetrics writer and validator.
//===--------------------------------------------------------------===//

TEST_F(MetricsTest, OpenMetricsNameSanitization) {
  EXPECT_EQ(openMetricsName("cache.wait_us"), "cache_wait_us");
  EXPECT_EQ(openMetricsName("explore/retries-total"),
            "explore_retries_total");
  EXPECT_EQ(openMetricsName("9lives"), "_9lives");
}

TEST_F(MetricsTest, ValidatorAcceptsWriterOutput) {
  OpenMetricsWriter W;
  W.family("demo_latency", "summary", "demo");
  W.sample("demo_latency", 1.5, {{"quantile", "0.5"}});
  W.sample("demo_latency_sum", 3.0);
  W.sample("demo_latency_count", 2);
  W.family("demo_gauge", "gauge");
  W.sample("demo_gauge", 7, {{"label", "with \"quotes\" and \\slash\\ \n"}});
  std::string Error;
  EXPECT_TRUE(validateOpenMetrics(W.finish(), &Error)) << Error;
}

TEST_F(MetricsTest, ValidatorRejectsMalformedDocuments) {
  // Missing # EOF.
  EXPECT_FALSE(validateOpenMetrics("# TYPE a gauge\na 1\n"));
  // Sample without a preceding TYPE declaration.
  EXPECT_FALSE(validateOpenMetrics("a 1\n# EOF\n"));
  // Value that is not a float.
  EXPECT_FALSE(validateOpenMetrics("# TYPE a gauge\na pancake\n# EOF\n"));
  // Content after the terminator.
  EXPECT_FALSE(
      validateOpenMetrics("# TYPE a gauge\na 1\n# EOF\na 2\n"));
  // Illegal metric name.
  EXPECT_FALSE(validateOpenMetrics("# TYPE a.b gauge\na.b 1\n# EOF\n"));
  std::string Error;
  EXPECT_FALSE(validateOpenMetrics("", &Error));
  EXPECT_FALSE(Error.empty());
}

//===--------------------------------------------------------------===//
// MetricsSampler with a fake clock (synchronous sampleOnce mode).
//===--------------------------------------------------------------===//

TEST_F(MetricsTest, SamplerComputesWindowRates) {
  double Now = 100.0;
  MetricsSamplerOptions O;
  O.Clock = [&Now] { return Now; };
  MetricsSampler S(O);

  Histogram &Evals = HistogramRegistry::global().histogram("eval.latency_us");
  Now = 101.0;
  MetricsSample First = S.sampleOnce();
  EXPECT_EQ(First.Seq, 1u);
  EXPECT_DOUBLE_EQ(First.Time, 101.0);
  EXPECT_DOUBLE_EQ(First.EvalsPerSec, 0.0);
  EXPECT_EQ(First.CacheHitRate, -1); // no cache lookups this window

  for (int I = 0; I != 10; ++I)
    Evals.record(100);
  Now = 103.0; // 10 evaluations over a 2 s window
  MetricsSample Second = S.sampleOnce();
  EXPECT_EQ(Second.Seq, 2u);
  EXPECT_DOUBLE_EQ(Second.EvalsPerSec, 5.0);
}

TEST_F(MetricsTest, SamplerProjectsEta) {
  double Now = 100.0;
  MetricsSamplerOptions O;
  O.Clock = [&Now] { return Now; };
  MetricsSampler S(O);
  S.setGauge("jobs_total", [] { return 4.0; });
  S.setGauge("jobs_done", [] { return 1.0; });
  Now = 102.0; // 1 of 4 jobs done after 2 s -> 6 s to go
  MetricsSample Sample = S.sampleOnce();
  EXPECT_DOUBLE_EQ(Sample.EtaSeconds, 6.0);
}

TEST_F(MetricsTest, SampleOutputsParseClean) {
  HistogramRegistry::global().histogram("eval.latency_us").record(250);
  MetricsSampler S({});
  S.setGauge("queue_depth", [] { return 3.0; });
  MetricsSample Sample = S.sampleOnce(/*Final=*/true);

  std::string Error;
  ASSERT_TRUE(isValidJson(Sample.JsonLine, &Error)) << Error;
  EXPECT_TRUE(validateOpenMetrics(Sample.Prom, &Error)) << Error;

  Expected<JsonValue> Doc = parseJson(Sample.JsonLine);
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_TRUE(Doc->boolean("final"));
  const JsonValue *Gauges = Doc->find("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_DOUBLE_EQ(Gauges->num("queue_depth"), 3.0);
  ASSERT_NE(Doc->find("counters"), nullptr);
  ASSERT_NE(Doc->find("timers"), nullptr);
  ASSERT_NE(Doc->find("histograms"), nullptr);
}

TEST_F(MetricsTest, SamplerWritesFilesAtomically) {
  const std::string Jsonl = tempPath("sampler.jsonl");
  const std::string Prom = tempPath("sampler.prom");
  std::remove(Jsonl.c_str());
  std::remove(Prom.c_str());

  MetricsSamplerOptions O;
  O.JsonlPath = Jsonl;
  O.PromPath = Prom;
  MetricsSampler S(O);
  HistogramRegistry::global().histogram("eval.latency_us").record(77);
  S.sampleOnce();
  MetricsSample Last = S.sampleOnce(/*Final=*/true);
  ASSERT_TRUE(S.ioStatus().isOk()) << S.ioStatus().message();

  std::ifstream In(Jsonl);
  ASSERT_TRUE(In.good());
  std::string Line;
  std::vector<std::string> Lines;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &L : Lines)
    EXPECT_TRUE(isValidJson(L));
  Expected<JsonValue> Final = parseJson(Lines.back());
  ASSERT_TRUE(Final.hasValue());
  EXPECT_TRUE(Final->boolean("final"));
  EXPECT_EQ(Lines.back(), Last.JsonLine);

  std::ifstream PromIn(Prom);
  std::ostringstream PromText;
  PromText << PromIn.rdbuf();
  EXPECT_EQ(PromText.str(), Last.Prom);
  // No stale temp files after the renames.
  EXPECT_FALSE(std::ifstream(Jsonl + ".tmp").good());
  EXPECT_FALSE(std::ifstream(Prom + ".tmp").good());
  std::remove(Jsonl.c_str());
  std::remove(Prom.c_str());
}

TEST_F(MetricsTest, SamplerIoFailureIsStickyNotFatal) {
  MetricsSamplerOptions O;
  O.JsonlPath = "/nonexistent-dir/defacto-metrics.jsonl";
  MetricsSampler S(O);
  MetricsSample Sample = S.sampleOnce();
  EXPECT_FALSE(S.ioStatus().isOk());
  EXPECT_FALSE(Sample.JsonLine.empty()); // sampling continues in-memory
}

//===--------------------------------------------------------------===//
// Background thread and cancellation.
//===--------------------------------------------------------------===//

TEST_F(MetricsTest, BackgroundThreadSamplesUntilStopped) {
  const std::string Jsonl = tempPath("bg.jsonl");
  std::remove(Jsonl.c_str());
  MetricsSamplerOptions O;
  O.IntervalSeconds = 0.005;
  O.JsonlPath = Jsonl;
  MetricsSampler S(O);
  S.start();
  Histogram &H = HistogramRegistry::global().histogram("eval.latency_us");
  for (int I = 0; I != 20; ++I) {
    H.record(100 + I);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  S.stop();
  uint64_t Taken = S.samples();
  EXPECT_GE(Taken, 2u); // several periodic samples plus the final one
  EXPECT_TRUE(S.ioStatus().isOk());

  // stop() must be idempotent and the final line marked final.
  std::ifstream In(Jsonl);
  std::string Line, LastLine;
  while (std::getline(In, Line))
    if (!Line.empty())
      LastLine = Line;
  Expected<JsonValue> Final = parseJson(LastLine);
  ASSERT_TRUE(Final.hasValue());
  EXPECT_TRUE(Final->boolean("final"));
  std::remove(Jsonl.c_str());
}

TEST_F(MetricsTest, CancellationStopsTheWorker) {
  CancellationToken Token = CancellationToken::create();
  MetricsSamplerOptions O;
  O.IntervalSeconds = 0.005;
  O.Cancel = Token;
  MetricsSampler S(O);
  S.start();
  Token.requestCancel("test");
  // The worker exits within one interval of the token firing; after a
  // generous settle time the sample count must stop moving.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t N1 = S.samples();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  uint64_t N2 = S.samples();
  EXPECT_EQ(N1, N2);
  S.stop(); // still emits the explicit final sample
  EXPECT_EQ(S.samples(), N2 + 1);
}

//===--------------------------------------------------------------===//
// End-to-end agreement with the registries and the estimate cache.
//===--------------------------------------------------------------===//

TEST_F(MetricsTest, FinalSampleAgreesWithRegistriesAfterExploration) {
  uint64_t LookupsBefore = counterValue("cache", "lookups");

  Kernel K = buildKernel("FIR");
  ExplorerOptions Opts;
  auto Cache = std::make_shared<EstimateCache>();
  Opts.Cache = Cache;
  ExplorationResult Res = exploreExhaustive(K, Opts);
  EXPECT_GT(Res.EvaluationsUsed, 0u);

  MetricsSampler S({});
  MetricsSample Final = S.sampleOnce(/*Final=*/true);
  Expected<JsonValue> Doc = parseJson(Final.JsonLine);
  ASSERT_TRUE(Doc.hasValue());

  // Counters: the final sample embeds StatRegistry::toJson() verbatim,
  // so every counter matches the registry exactly.
  const JsonValue *Counters = Doc->find("counters");
  ASSERT_NE(Counters, nullptr);
  for (const StatSnapshot &C : StatRegistry::instance().snapshot())
    EXPECT_EQ(Counters->uint(C.Group + "." + C.Name), C.Value)
        << C.Group << "." << C.Name;

  // The cache counters in the sample agree with the cache's own
  // consistent snapshot (this test's cache was fresh, so the counter
  // delta is exactly its lookup count).
  EstimateCache::Stats St = Cache->stats();
  EXPECT_EQ(counterValue("cache", "lookups") - LookupsBefore, St.Lookups);

  // Histograms: the evaluation latency distribution in the sample is
  // the registry's, with one record per genuine evaluation.
  const JsonValue *Hists = Doc->find("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *EvalHist = Hists->find("eval.latency_us");
  ASSERT_NE(EvalHist, nullptr);
  uint64_t RegistryCount = 0;
  for (const HistogramSnapshot &H : HistogramRegistry::global().snapshot())
    if (H.Name == "eval.latency_us")
      RegistryCount = H.Count;
  EXPECT_EQ(EvalHist->uint("count"), RegistryCount);
  EXPECT_GT(RegistryCount, 0u);
}

TEST_F(MetricsTest, WriteStatsFileRoundTrips) {
  HistogramRegistry::global().histogram("eval.latency_us").record(5);
  const std::string Path = tempPath("stats.json");
  std::remove(Path.c_str());
  ASSERT_TRUE(cl::writeStatsFile(Path));
  std::ifstream In(Path);
  std::ostringstream Text;
  Text << In.rdbuf();
  Expected<JsonValue> Doc = parseJson(Text.str());
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_NE(Doc->find("counters"), nullptr);
  EXPECT_NE(Doc->find("timers"), nullptr);
  EXPECT_NE(Doc->find("histograms"), nullptr);
  std::remove(Path.c_str());
}

} // namespace
