//===- parallel_explorer_test.cpp - Parallel == sequential determinism ----===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The concurrent engine's core guarantee: with a deterministic
/// estimation backend, a parallel exploration (speculative frontier
/// evaluation, shared estimate cache, exhaustive fan-out, batch driver)
/// selects the *bit-identical* design the sequential walk selects, with
/// the same visit order, trace, and budget accounting. Checked for every
/// paper kernel on both platforms and for a seeded family of randomly
/// generated kernels.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/Explorer.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Random.h"
#include "defacto/Support/Stats.h"

#include <atomic>
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

using namespace defacto;

namespace {

/// Asserts two exploration outcomes are indistinguishable.
void expectIdentical(const ExplorationResult &Seq,
                     const ExplorationResult &Par) {
  EXPECT_EQ(Seq.Selected, Par.Selected);
  EXPECT_EQ(Seq.SelectedEstimate.Cycles, Par.SelectedEstimate.Cycles);
  EXPECT_EQ(Seq.SelectedEstimate.Slices, Par.SelectedEstimate.Slices);
  EXPECT_EQ(Seq.SelectedEstimate.Registers, Par.SelectedEstimate.Registers);
  EXPECT_EQ(Seq.SelectedFits, Par.SelectedFits);
  EXPECT_EQ(Seq.Degraded, Par.Degraded);
  EXPECT_EQ(Seq.EvaluationsUsed, Par.EvaluationsUsed);
  EXPECT_EQ(Seq.Trace, Par.Trace);
  ASSERT_EQ(Seq.Visited.size(), Par.Visited.size());
  for (size_t I = 0; I != Seq.Visited.size(); ++I) {
    EXPECT_EQ(Seq.Visited[I].U, Par.Visited[I].U);
    EXPECT_EQ(Seq.Visited[I].Role, Par.Visited[I].Role);
    EXPECT_EQ(Seq.Visited[I].Estimate.Cycles, Par.Visited[I].Estimate.Cycles);
  }
}

ExplorationResult runSequential(const Kernel &K, ExplorerOptions Opts) {
  Opts.NumThreads = 1;
  return DesignSpaceExplorer(K, std::move(Opts)).run();
}

ExplorationResult runParallel(const Kernel &K, ExplorerOptions Opts,
                              unsigned Threads = 4) {
  Opts.NumThreads = Threads;
  return DesignSpaceExplorer(K, std::move(Opts)).run();
}

/// Random affine kernels through the frontend: randomized nest depth,
/// trip counts, subscript offsets, and operation mix, all inside the
/// paper's input domain so every generated source must parse.
std::string randomKernelSource(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  static const int64_t TripChoices[] = {4, 6, 8, 12, 16, 24};
  int64_t N = TripChoices[Rng.nextBelow(6)];
  int64_t M = TripChoices[Rng.nextBelow(6)];
  int64_t Off = static_cast<int64_t>(Rng.nextBelow(3));
  const char *Op = Rng.nextBelow(2) ? "*" : "+";
  std::ostringstream OS;
  switch (Rng.nextBelow(3)) {
  case 0: // FIR-shaped: inner reduction over a sliding window
    OS << "int a[" << (N + M + 4) << "]; int c[" << (M + 4)
       << "]; int out[" << (N + 4) << "];\n"
       << "for (i = 0; i < " << N << "; i++)\n"
       << "  for (j = 0; j < " << M << "; j++)\n"
       << "    out[i] = out[i] + a[i + j] " << Op << " c[j];\n";
    break;
  case 1: // MM-shaped: 2-D output, rectangular operands
    OS << "int a[" << (N + 4) << "][" << (M + 4) << "]; int b[" << (M + 4)
       << "]; int out[" << (N + 4) << "];\n"
       << "for (i = 0; i < " << N << "; i++)\n"
       << "  for (j = 0; j < " << M << "; j++)\n"
       << "    out[i] = out[i] + a[i][j] " << Op << " b[j];\n";
    break;
  default: // stencil-shaped: offset reads from one array
    OS << "int a[" << (N + 8) << "][" << (N + 8) << "]; int out["
       << (N + 8) << "][" << (N + 8) << "];\n"
       << "for (i = 0; i < " << N << "; i++)\n"
       << "  for (j = 0; j < " << N << "; j++)\n"
       << "    out[i][j] = a[i][j] + a[i + " << Off << "][j + 1];\n";
    break;
  }
  return OS.str();
}

Kernel buildFuzzKernel(uint64_t Seed) {
  DiagnosticEngine Diags;
  std::optional<Kernel> K = parseKernel(randomKernelSource(Seed),
                                        "fuzz" + std::to_string(Seed),
                                        Diags);
  EXPECT_TRUE(K.has_value()) << randomKernelSource(Seed);
  return std::move(*K);
}

uint64_t fuzzSeedCount() {
  if (const char *Env = std::getenv("DEFACTO_FUZZ_SEEDS"))
    if (long V = std::atol(Env); V > 0)
      return static_cast<uint64_t>(V);
  return 32;
}

} // namespace

TEST(ParallelExplorer, PaperKernelsMatchSequentialOnBothPlatforms) {
  for (const KernelSpec &Spec : paperKernels())
    for (bool Pipelined : {true, false}) {
      Kernel K = buildKernel(Spec.Name);
      ExplorerOptions Opts;
      Opts.Platform = Pipelined ? TargetPlatform::wildstarPipelined()
                                : TargetPlatform::wildstarNonPipelined();
      SCOPED_TRACE(Spec.Name + (Pipelined ? "/pipelined" : "/nonpipelined"));
      expectIdentical(runSequential(K, Opts), runParallel(K, Opts));
    }
}

TEST(ParallelExplorer, SharedPoolAcrossRunsMatchesToo) {
  auto Pool = std::make_shared<ThreadPool>(4);
  auto Cache = std::make_shared<EstimateCache>();
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions Opts;
    ExplorerOptions Par = Opts;
    Par.Pool = Pool;
    Par.Cache = Cache;
    SCOPED_TRACE(Spec.Name);
    expectIdentical(runSequential(K, Opts),
                    DesignSpaceExplorer(K, std::move(Par)).run());
  }
}

TEST(ParallelExplorer, WarmCacheReplayIsIdenticalAndCheap) {
  Kernel K = buildKernel("MM");
  auto Cache = std::make_shared<EstimateCache>();
  ExplorerOptions Opts;
  Opts.Cache = Cache;
  ExplorationResult Cold = DesignSpaceExplorer(K, Opts).run();
  uint64_t HitsBefore = Cache->stats().Hits;
  ExplorationResult Warm = DesignSpaceExplorer(K, Opts).run();
  expectIdentical(Cold, Warm);
  // Every estimate of the warm run came out of the shared cache.
  EXPECT_GT(Cache->stats().Hits, HitsBefore);
}

TEST(ParallelExplorer, ExhaustiveMatchesSequential) {
  for (const char *Name : {"FIR", "MM", "JAC"}) {
    Kernel K = buildKernel(Name);
    ExplorerOptions Seq;
    ExplorerOptions Par;
    Par.NumThreads = 4;
    SCOPED_TRACE(Name);
    ExplorationResult A = exploreExhaustive(K, Seq);
    ExplorationResult B = exploreExhaustive(K, Par);
    expectIdentical(A, B);
  }
}

TEST(ParallelExplorer, RandomMatchesSequential) {
  Kernel K = buildKernel("SOBEL");
  ExplorerOptions Seq;
  ExplorerOptions Par;
  Par.NumThreads = 4;
  expectIdentical(exploreRandom(K, Seq, 12, 42),
                  exploreRandom(K, Par, 12, 42));
}

TEST(ParallelExplorer, RegisterCapRunsMatchSequential) {
  Kernel K = buildKernel("FIR");
  ExplorerOptions Opts;
  Opts.RegisterCap = 24;
  expectIdentical(runSequential(K, Opts), runParallel(K, Opts));
}

class ParallelExplorerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelExplorerFuzz, RandomKernelsMatchSequential) {
  Kernel K = buildFuzzKernel(GetParam());
  ExplorerOptions Opts;
  expectIdentical(runSequential(K, Opts),
                  runParallel(K, Opts, 2 + GetParam() % 5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelExplorerFuzz,
                         ::testing::Range<uint64_t>(0, fuzzSeedCount()));

TEST(BatchExplorer, MatchesIndividualSequentialRuns) {
  BatchOptions Batch;
  Batch.NumThreads = 4;
  BatchExplorer Engine(Batch);
  for (const KernelSpec &Spec : paperKernels())
    Engine.addJob(buildKernel(Spec.Name), ExplorerOptions{});
  std::vector<BatchResult> Results = Engine.runAll();

  ASSERT_EQ(Results.size(), paperKernels().size());
  for (size_t I = 0; I != Results.size(); ++I) {
    const KernelSpec &Spec = paperKernels()[I];
    SCOPED_TRACE(Spec.Name);
    EXPECT_EQ(Results[I].Name, Spec.Name); // submission order preserved
    expectIdentical(runSequential(buildKernel(Spec.Name), {}),
                    Results[I].Result);
  }
}

TEST(BatchExplorer, DuplicateJobsShareTheCache) {
  BatchOptions Batch;
  Batch.NumThreads = 2;
  BatchExplorer Engine(Batch);
  Engine.addJob(buildKernel("FIR"), ExplorerOptions{});
  Engine.addJob(buildKernel("FIR"), ExplorerOptions{});
  std::vector<BatchResult> Results = Engine.runAll();

  ASSERT_EQ(Results.size(), 2u);
  expectIdentical(Results[0].Result, Results[1].Result);
  // The second copy consumed the first's entries (or raced it through
  // the in-flight dedup): the cache saw hits or waits, and nothing was
  // estimated twice.
  EstimateCache::Stats S = Engine.estimateCache()->stats();
  EXPECT_GT(S.Hits + S.Waits, 0u);
  EXPECT_EQ(S.Misses, static_cast<uint64_t>(Engine.estimateCache()->size()));
}

TEST(BatchExplorer, CacheStatsStayConsistentUnderConcurrentSnapshots) {
  // stats() holds every shard lock at once, so any snapshot taken while
  // workers are mid-exploration must already satisfy the accounting
  // identity — a lookup is never half-counted. Run under tsan this also
  // exercises the counters' lock discipline.
  auto Cache = std::make_shared<EstimateCache>();
  BatchOptions Batch;
  Batch.NumThreads = 4;
  Batch.Cache = Cache;
  BatchExplorer Engine(Batch);
  for (int Round = 0; Round != 4; ++Round)
    for (const KernelSpec &Spec : paperKernels())
      Engine.addJob(buildKernel(Spec.Name), ExplorerOptions{});

  std::atomic<bool> Done{false};
  std::thread Snapshotter([&Cache, &Done] {
    while (!Done.load(std::memory_order_relaxed)) {
      EstimateCache::Stats S = Cache->stats();
      EXPECT_EQ(S.Lookups, S.Hits + S.Misses + S.Waits);
      EXPECT_LE(S.Inserts, S.Misses);
      std::this_thread::yield();
    }
  });
  Engine.runAll();
  Done.store(true, std::memory_order_relaxed);
  Snapshotter.join();

  EstimateCache::Stats Final = Cache->stats();
  EXPECT_EQ(Final.Lookups, Final.Hits + Final.Misses + Final.Waits);
  EXPECT_GT(Final.Hits + Final.Waits, 0u);
  // Registry mirror: when enabled it moves with the same events (the
  // mirror is process-global, so only monotonicity is asserted here).
  StatRegistry::instance().setEnabled(true);
  uint64_t MirrorBefore = 0, MirrorAfter = 0;
  for (const StatSnapshot &S : StatRegistry::instance().snapshot())
    if (S.Group == "cache" && S.Name == "lookups")
      MirrorBefore = S.Value;
  DesignSpaceExplorer(buildKernel("FIR"), {}).run();
  for (const StatSnapshot &S : StatRegistry::instance().snapshot())
    if (S.Group == "cache" && S.Name == "lookups")
      MirrorAfter = S.Value;
  StatRegistry::instance().setEnabled(false);
  EXPECT_GT(MirrorAfter, MirrorBefore);
}

TEST(BatchExplorer, ExhaustiveModeAndSequentialBatchAgree) {
  std::vector<BatchJob> Jobs;
  Jobs.emplace_back("fir", buildKernel("FIR"), ExplorerOptions{},
                    BatchJob::Mode::Exhaustive);
  Jobs.emplace_back("mm", buildKernel("MM"), ExplorerOptions{},
                    BatchJob::Mode::Exhaustive);

  BatchOptions Par;
  Par.NumThreads = 2;
  std::vector<BatchJob> JobsCopy;
  JobsCopy.emplace_back("fir", buildKernel("FIR"), ExplorerOptions{},
                        BatchJob::Mode::Exhaustive);
  JobsCopy.emplace_back("mm", buildKernel("MM"), ExplorerOptions{},
                        BatchJob::Mode::Exhaustive);

  std::vector<BatchResult> Sequential = exploreBatch(std::move(Jobs), {});
  std::vector<BatchResult> Parallel =
      exploreBatch(std::move(JobsCopy), Par);
  ASSERT_EQ(Sequential.size(), Parallel.size());
  for (size_t I = 0; I != Sequential.size(); ++I)
    expectIdentical(Sequential[I].Result, Parallel[I].Result);
}
