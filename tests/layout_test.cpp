//===- layout_test.cpp - Data layout (renaming + mapping) tests -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/DataLayout.h"
#include "defacto/Transforms/LoopPeeling.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <gtest/gtest.h>
#include <set>

using namespace defacto;

namespace {

Kernel preparedFir(UnrollVector U) {
  Kernel K = buildKernel("FIR");
  normalizeLoops(K);
  EXPECT_TRUE(unrollAndJam(K, U));
  normalizeLoops(K);
  scalarReplace(K);
  peelGuardedIterations(K);
  return K;
}

} // namespace

TEST(DataLayout, FirUnroll2CreatesFigure1dBanks) {
  Kernel K = preparedFir({2, 2});
  DataLayoutStats Stats = *applyDataLayout(K, {4});
  EXPECT_TRUE(isKernelValid(K));
  // S, C, D each split into two banks (Figure 1(d)).
  EXPECT_EQ(Stats.ArraysDistributed, 3u);
  for (const char *Name : {"S0", "S1", "C0", "C1", "D0", "D1"})
    EXPECT_NE(K.findArray(Name), nullptr) << Name;
  // Bank-local dimensions halve (rounded up).
  EXPECT_EQ(K.findArray("S0")->dim(0), 48);
  EXPECT_EQ(K.findArray("D0")->dim(0), 32);
  // Renaming metadata routes back to the origins.
  EXPECT_EQ(K.findArray("S1")->renamedFrom(), K.findArray("S"));
  EXPECT_EQ(K.findArray("S1")->bankOffset(), 1);
  EXPECT_EQ(K.findArray("S1")->bankStride(), 2);
}

TEST(DataLayout, EveryAccessGetsAPort) {
  Kernel K = preparedFir({2, 2});
  applyDataLayout(K, {4});
  for (const AccessInfo &Info : collectArrayAccesses(K)) {
    EXPECT_GE(Info.Access->steadyStatePort(), 0);
    EXPECT_LT(Info.Access->steadyStatePort(), 4);
    EXPECT_GE(Info.Access->array()->physicalMemId(), 0);
  }
}

TEST(DataLayout, ParallelReadsLandOnDistinctPorts) {
  Kernel K = preparedFir({2, 2});
  applyDataLayout(K, {4});
  // The three steady-state S loads have three distinct subscript
  // constants; their ports must be pairwise distinct.
  std::set<int> SPorts;
  unsigned SLoads = 0;
  for (const AccessInfo &Info : collectArrayAccesses(K)) {
    const ArrayDecl *Origin = Info.Access->array()->renamedFrom()
                                  ? Info.Access->array()->renamedFrom()
                                  : Info.Access->array();
    if (Origin->name() == "S" && !Info.IsWrite) {
      SPorts.insert(Info.Access->steadyStatePort());
      ++SLoads;
    }
  }
  EXPECT_GE(SLoads, 3u);
  EXPECT_GE(SPorts.size(), 3u);
}

TEST(DataLayout, BaselineWithoutUnrollKeepsArraysWhole) {
  Kernel K = preparedFir({1, 1});
  DataLayoutStats Stats = *applyDataLayout(K, {4});
  // Unit-stride subscripts are not divisible: no renaming, steady-state
  // ports only.
  EXPECT_EQ(Stats.ArraysDistributed, 0u);
  EXPECT_EQ(K.findArray("S0"), nullptr);
}

TEST(DataLayout, SingleMemoryDegenerates) {
  Kernel K = preparedFir({2, 2});
  DataLayoutStats Stats = *applyDataLayout(K, {1});
  EXPECT_EQ(Stats.ArraysDistributed, 0u);
  for (const AccessInfo &Info : collectArrayAccesses(K))
    EXPECT_EQ(Info.Access->steadyStatePort(), 0);
}

TEST(DataLayout, MmDistributesAlongUnrolledDims) {
  Kernel K = buildKernel("MM");
  normalizeLoops(K);
  ASSERT_TRUE(unrollAndJam(K, {2, 2, 1}));
  normalizeLoops(K);
  scalarReplace(K);
  peelGuardedIterations(K);
  DataLayoutStats Stats = *applyDataLayout(K, {4});
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_GE(Stats.ArraysDistributed, 2u); // A (rows) and Z at least.
}

namespace {

struct LayoutCase {
  const char *KernelName;
  UnrollVector Factors;
  unsigned Memories;
};

class LayoutSemantics : public ::testing::TestWithParam<LayoutCase> {};

} // namespace

TEST_P(LayoutSemantics, PreservesResults) {
  const LayoutCase &Case = GetParam();
  Kernel Original = buildKernel(Case.KernelName);
  auto Reference = simulate(Original, 555);

  Kernel K = buildKernel(Case.KernelName);
  normalizeLoops(K);
  ASSERT_TRUE(unrollAndJam(K, Case.Factors));
  normalizeLoops(K);
  scalarReplace(K);
  peelGuardedIterations(K);
  applyDataLayout(K, {Case.Memories});
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(simulate(K, 555), Reference);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutSemantics,
    ::testing::Values(LayoutCase{"FIR", {2, 2}, 4},
                      LayoutCase{"FIR", {4, 4}, 4},
                      LayoutCase{"FIR", {8, 2}, 2},
                      LayoutCase{"MM", {4, 2, 1}, 4},
                      LayoutCase{"PAT", {4, 4}, 4},
                      LayoutCase{"JAC", {2, 2}, 4},
                      LayoutCase{"SOBEL", {2, 4}, 4},
                      LayoutCase{"SOBEL", {4, 4}, 8}),
    [](const ::testing::TestParamInfo<LayoutCase> &Info) {
      std::string Name = Info.param.KernelName;
      for (int64_t F : Info.param.Factors)
        Name += "_" + std::to_string(F);
      Name += "_m" + std::to_string(Info.param.Memories);
      return Name;
    });

TEST(DataLayout, TwoDimBankDimsRoundUp) {
  // DILATE's 34-wide rows split into two banks of 17.
  Kernel K = buildKernel("DILATE");
  normalizeLoops(K);
  ASSERT_TRUE(unrollAndJam(K, {2, 2}));
  normalizeLoops(K);
  scalarReplace(K);
  peelGuardedIterations(K);
  applyDataLayout(K, {4});
  bool FoundBank = false;
  for (const auto &A : K.arrays()) {
    if (!A->renamedFrom())
      continue;
    FoundBank = true;
    EXPECT_EQ(A->dim(A->bankDim()),
              (A->renamedFrom()->dim(A->bankDim()) + A->bankStride() - 1) /
                  A->bankStride());
  }
  EXPECT_TRUE(FoundBank);
}

TEST(DataLayout, SteadyPortsRespectMemoryCount) {
  for (unsigned M : {2u, 3u, 8u}) {
    Kernel K = preparedFir({2, 2});
    applyDataLayout(K, {M});
    for (const AccessInfo &Info : collectArrayAccesses(K)) {
      EXPECT_GE(Info.Access->steadyStatePort(), 0);
      EXPECT_LT(Info.Access->steadyStatePort(), static_cast<int>(M));
    }
  }
}
