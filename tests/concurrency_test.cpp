//===- concurrency_test.cpp - ThreadPool and EstimateCache tests ----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The concurrent-evaluation substrate under contention: the worker pool
/// (submission, futures, drain-on-shutdown) and the shared estimate
/// cache (exactly-once computation, in-flight waiter dedup, negative
/// entries, the abandon path). Every test is also a ThreadSanitizer
/// target through the tsan CMake preset.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/EstimateCache.h"
#include "defacto/Support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace defacto;

namespace {

SynthesisEstimate makeEstimate(uint64_t Cycles) {
  SynthesisEstimate E;
  E.Cycles = Cycles;
  E.Slices = static_cast<double>(Cycles) / 2;
  return E;
}

} // namespace

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I != 100; ++I)
    Futures.push_back(Pool.submit([&Count] { ++Count; }));
  for (auto &F : Futures)
    F.wait();
  EXPECT_EQ(Count.load(), 100);
  EXPECT_GE(Pool.tasksRun(), 100u);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool Pool(2);
  std::future<int> A = Pool.async([] { return 21; });
  std::future<std::string> B =
      Pool.async([]() -> std::string { return "ok"; });
  EXPECT_EQ(A.get(), 21);
  EXPECT_EQ(B.get(), "ok");
}

TEST(ThreadPool, WaitBlocksUntilIdle) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I != 64; ++I)
    Pool.submit([&Count] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      ++Count;
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPool, DestructionDrainsTheQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 32; ++I)
      Pool.submit([&Count] { ++Count; });
    // Destructor must run every queued task before joining.
  }
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  EXPECT_EQ(Pool.async([] { return 7; }).get(), 7);
}

TEST(EstimateCache, FulfillThenHit) {
  EstimateCache Cache;
  auto First = Cache.lookupOrBegin("k");
  ASSERT_TRUE(std::holds_alternative<EstimateCache::Ticket>(First));
  Cache.fulfill(std::get<EstimateCache::Ticket>(std::move(First)),
                {makeEstimate(100), 2});

  auto Second = Cache.lookupOrBegin("k");
  ASSERT_TRUE(std::holds_alternative<EstimateCache::Result>(Second));
  const auto &R = std::get<EstimateCache::Result>(Second);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Estimate->Cycles, 100u);
  EXPECT_EQ(R.Attempts, 2u);

  EstimateCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(EstimateCache, NegativeEntriesAreRemembered) {
  EstimateCache Cache;
  auto T = Cache.lookupOrBegin("bad");
  Cache.fulfill(std::get<EstimateCache::Ticket>(std::move(T)),
                {Expected<SynthesisEstimate>(Status::error(
                     ErrorCode::EstimationFailed, "backend crash")),
                 3});

  auto Again = Cache.lookupOrBegin("bad");
  ASSERT_TRUE(std::holds_alternative<EstimateCache::Result>(Again));
  const auto &R = std::get<EstimateCache::Result>(Again);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Attempts, 3u);
  EXPECT_EQ(R.Estimate.status().code(), ErrorCode::EstimationFailed);
  EXPECT_EQ(Cache.stats().NegativeHits, 1u);
}

TEST(EstimateCache, AbandonForgetsTheKeyAndSignalsTransient) {
  EstimateCache Cache;
  auto T = Cache.lookupOrBegin("k");
  ASSERT_TRUE(std::holds_alternative<EstimateCache::Ticket>(T));

  // A waiter arrives while the computation is in flight.
  std::thread Waiter([&Cache] {
    auto W = Cache.lookupOrBegin("k");
    ASSERT_TRUE(std::holds_alternative<EstimateCache::Result>(W));
    const auto &R = std::get<EstimateCache::Result>(W);
    EXPECT_EQ(R.Attempts, 0u); // transient sentinel: recompute
    EXPECT_EQ(R.Estimate.status().code(), ErrorCode::DeadlineExceeded);
  });

  // Abandon only once the waiter is provably blocked on the in-flight
  // entry (the Waits counter ticks before it parks on the future), so
  // it cannot instead race ahead and draw a fresh ticket.
  while (Cache.stats().Waits == 0)
    std::this_thread::yield();
  Cache.abandon(std::get<EstimateCache::Ticket>(std::move(T)),
                Status::error(ErrorCode::DeadlineExceeded, "deadline"));
  Waiter.join();

  // The key was erased: the next caller gets a fresh ticket.
  auto Retry = Cache.lookupOrBegin("k");
  EXPECT_TRUE(std::holds_alternative<EstimateCache::Ticket>(Retry));
  Cache.fulfill(std::get<EstimateCache::Ticket>(std::move(Retry)),
                {makeEstimate(5), 1});
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(EstimateCache, EachKeyComputedExactlyOnceUnderContention) {
  EstimateCache Cache(4); // few shards: force shard contention
  constexpr int NumThreads = 8;
  constexpr int NumKeys = 25;
  std::atomic<int> Computations{0};

  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Cache, &Computations, T] {
      // Each thread walks the keys starting at a different offset, so
      // racing threads collide on different keys at the same time.
      for (int I = 0; I != NumKeys; ++I) {
        int KeyIdx = (I + T * 3) % NumKeys;
        std::string Key = "design-" + std::to_string(KeyIdx);
        EstimateCache::Result R = Cache.getOrCompute(Key, [&] {
          ++Computations;
          std::this_thread::sleep_for(std::chrono::microseconds(20));
          return EstimateCache::Result{
              makeEstimate(static_cast<uint64_t>(KeyIdx) + 1), 1};
        });
        ASSERT_TRUE(R.ok());
        ASSERT_EQ(R.Estimate->Cycles,
                  static_cast<uint64_t>(KeyIdx) + 1);
      }
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Computations.load(), NumKeys);
  EXPECT_EQ(Cache.size(), static_cast<size_t>(NumKeys));
  EstimateCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Lookups,
            static_cast<uint64_t>(NumThreads) * NumKeys);
  EXPECT_EQ(S.Misses, static_cast<uint64_t>(NumKeys));
  EXPECT_EQ(S.Hits + S.Waits + S.Misses, S.Lookups);
  EXPECT_GT(S.hitRate(), 0.5);
}

TEST(EstimateCache, MixedPositiveAndNegativeHammer) {
  EstimateCache Cache;
  constexpr int NumThreads = 8;
  constexpr int NumKeys = 16;

  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Cache] {
      for (int Round = 0; Round != 50; ++Round)
        for (int I = 0; I != NumKeys; ++I) {
          std::string Key = "k" + std::to_string(I);
          EstimateCache::Result R = Cache.getOrCompute(Key, [I] {
            if (I % 3 == 0)
              return EstimateCache::Result{
                  Expected<SynthesisEstimate>(Status::error(
                      ErrorCode::EstimationFailed, "synthetic")),
                  2};
            return EstimateCache::Result{
                makeEstimate(static_cast<uint64_t>(I)), 1};
          });
          if (I % 3 == 0) {
            ASSERT_FALSE(R.ok());
            ASSERT_EQ(R.Attempts, 2u);
          } else {
            ASSERT_TRUE(R.ok());
            ASSERT_EQ(R.Estimate->Cycles, static_cast<uint64_t>(I));
          }
        }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Cache.size(), static_cast<size_t>(NumKeys));
}

TEST(EstimateCache, PeekNeverBlocksOrCreates) {
  EstimateCache Cache;
  EXPECT_FALSE(Cache.peek("missing").has_value());

  auto T = Cache.lookupOrBegin("inflight");
  ASSERT_TRUE(std::holds_alternative<EstimateCache::Ticket>(T));
  EXPECT_FALSE(Cache.peek("inflight").has_value()); // not completed yet
  Cache.fulfill(std::get<EstimateCache::Ticket>(std::move(T)),
                {makeEstimate(9), 1});
  auto Peeked = Cache.peek("inflight");
  ASSERT_TRUE(Peeked.has_value());
  EXPECT_EQ(Peeked->Estimate->Cycles, 9u);
}
