//===- unroll_test.cpp - Unroll-and-jam tests -----------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(UnrollVectorOps, ProductAndPrinting) {
  EXPECT_EQ(unrollProduct({2, 3, 4}), 24);
  EXPECT_EQ(unrollProduct({}), 1);
  EXPECT_EQ(unrollVectorToString({2, 4}), "(2, 4)");
  EXPECT_EQ(unrollVectorToString({7}), "(7)");
}

TEST(UnrollAndJam, CanUnrollChecks) {
  Kernel FIR = buildKernel("FIR");
  EXPECT_TRUE(canUnroll(FIR, {2, 2}));
  EXPECT_TRUE(canUnroll(FIR, {1, 1}));
  EXPECT_TRUE(canUnroll(FIR, {64, 32}));
  EXPECT_TRUE(canUnroll(FIR, {2}));        // Shorter: padded with 1.
  EXPECT_FALSE(canUnroll(FIR, {3, 2}));    // 3 does not divide 64.
  EXPECT_FALSE(canUnroll(FIR, {2, 2, 2})); // Deeper than the nest.
  EXPECT_FALSE(canUnroll(FIR, {0, 1}));    // Nonpositive factor.
}

TEST(UnrollAndJam, BodyReplicationAndSteps) {
  Kernel FIR = buildKernel("FIR");
  ASSERT_TRUE(unrollAndJam(FIR, {2, 2}));
  std::vector<ForStmt *> Nest = perfectNest(FIR.topLoop());
  ASSERT_EQ(Nest.size(), 2u);
  EXPECT_EQ(Nest[0]->step(), 2);
  EXPECT_EQ(Nest[1]->step(), 2);
  // The single MAC statement is replicated 4 times (Figure 1(b)).
  EXPECT_EQ(Nest[1]->body().size(), 4u);
  EXPECT_TRUE(isKernelValid(FIR));
}

TEST(UnrollAndJam, SubscriptShiftsMatchFigure1b) {
  Kernel FIR = buildKernel("FIR");
  ASSERT_TRUE(unrollAndJam(FIR, {2, 2}));
  // Collect the D-write subscript constants: 0,0,1,1 in outer-major
  // order (copies (0,0),(0,1),(1,0),(1,1)).
  std::vector<int64_t> DConsts;
  std::vector<int64_t> SConsts;
  for (const AccessInfo &Info : collectArrayAccesses(FIR)) {
    if (Info.IsWrite && Info.Access->array()->name() == "D")
      DConsts.push_back(Info.Access->subscript(0).constant());
    if (Info.Access->array()->name() == "S")
      SConsts.push_back(Info.Access->subscript(0).constant());
  }
  EXPECT_EQ(DConsts, (std::vector<int64_t>{0, 0, 1, 1}));
  EXPECT_EQ(SConsts, (std::vector<int64_t>{0, 1, 1, 2}));
}

TEST(UnrollAndJam, FactorOneIsIdentity) {
  Kernel FIR = buildKernel("FIR");
  std::string Before = printKernel(FIR);
  ASSERT_TRUE(unrollAndJam(FIR, {1, 1}));
  EXPECT_EQ(printKernel(FIR), Before);
}

TEST(UnrollAndJam, InvalidFactorsLeaveKernelUntouched) {
  Kernel FIR = buildKernel("FIR");
  std::string Before = printKernel(FIR);
  EXPECT_FALSE(unrollAndJam(FIR, {3, 1}));
  EXPECT_EQ(printKernel(FIR), Before);
}

TEST(UnrollAndJam, ThreeDeepNest) {
  Kernel MM = buildKernel("MM");
  ASSERT_TRUE(unrollAndJam(MM, {2, 2, 4}));
  std::vector<ForStmt *> Nest = perfectNest(MM.topLoop());
  ASSERT_EQ(Nest.size(), 3u);
  EXPECT_EQ(Nest[2]->body().size(), 16u);
  EXPECT_TRUE(isKernelValid(MM));
}

namespace {

/// Unroll-and-jam must preserve semantics for every kernel and factor.
struct UnrollCase {
  const char *KernelName;
  UnrollVector Factors;
};

class UnrollSemantics : public ::testing::TestWithParam<UnrollCase> {};

} // namespace

TEST_P(UnrollSemantics, PreservesResults) {
  const UnrollCase &Case = GetParam();
  Kernel K = buildKernel(Case.KernelName);
  auto Reference = simulate(K, 1234);
  ASSERT_TRUE(unrollAndJam(K, Case.Factors));
  EXPECT_TRUE(isKernelValid(K));
  EXPECT_EQ(simulate(K, 1234), Reference);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, UnrollSemantics,
    ::testing::Values(UnrollCase{"FIR", {2, 2}}, UnrollCase{"FIR", {4, 1}},
                      UnrollCase{"FIR", {1, 8}}, UnrollCase{"FIR", {64, 32}},
                      UnrollCase{"MM", {2, 2, 2}}, UnrollCase{"MM", {8, 4, 1}},
                      UnrollCase{"MM", {1, 1, 16}},
                      UnrollCase{"PAT", {4, 4}}, UnrollCase{"PAT", {16, 1}},
                      UnrollCase{"JAC", {2, 4}}, UnrollCase{"JAC", {8, 8}},
                      UnrollCase{"SOBEL", {2, 2}},
                      UnrollCase{"SOBEL", {1, 16}}),
    [](const ::testing::TestParamInfo<UnrollCase> &Info) {
      std::string Name = Info.param.KernelName;
      for (int64_t F : Info.param.Factors)
        Name += "_" + std::to_string(F);
      return Name;
    });
