//===- passmanager_test.cpp - PassRegistry / AnalysisManager units --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Direct unit coverage of the pass-pipeline machinery: the registry's
/// name surface, the textual pipeline parser's error reporting, pipeline
/// construction and execution, AnalysisManager caching and invalidation,
/// the interchange pass's dependence-legality gate, and the extended
/// cache-key scheme's byte-stability for historical (unroll-only)
/// designs.
///
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/AnalysisManager.h"
#include "defacto/Core/EstimateCache.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Transforms/ConstantFolding.h"
#include "defacto/Transforms/Interchange.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Pass.h"
#include "defacto/Transforms/PassRegistry.h"
#include "defacto/Transforms/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace defacto;

//===----------------------------------------------------------------------===//
// PassRegistry surface.
//===----------------------------------------------------------------------===//

TEST(PassRegistry, AllEightDefaultPassesAreRegistered) {
  PassRegistry &R = PassRegistry::instance();
  for (const char *Name :
       {"normalize", "stripmine", "unroll", "interchange", "scalar-repl",
        "peel", "fold", "layout"})
    EXPECT_TRUE(R.contains(Name)) << Name;
  EXPECT_FALSE(R.contains("nonexistent"));
}

TEST(PassRegistry, NamesAreSortedAndDescribeListsEveryPass) {
  PassRegistry &R = PassRegistry::instance();
  std::vector<std::string> Names = R.names();
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
  std::string Desc = R.describe();
  for (const std::string &Name : Names)
    EXPECT_NE(Desc.find(Name), std::string::npos) << Name;
}

TEST(PassRegistry, CreateReturnsWorkingPassAndNullForUnknown) {
  TransformOptions Opts;
  TransformResult Result(buildKernel("FIR"));
  std::unique_ptr<TransformPass> P =
      PassRegistry::instance().create("normalize", Opts, Result);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->name(), "normalize");
  EXPECT_EQ(PassRegistry::instance().create("bogus", Opts, Result), nullptr);
}

TEST(PassRegistry, AddRejectsDuplicateNames) {
  EXPECT_FALSE(PassRegistry::instance().add(
      "normalize", "dup", [](const TransformOptions &, TransformResult &) {
        return std::unique_ptr<TransformPass>();
      }));
}

//===----------------------------------------------------------------------===//
// Textual pipeline parsing.
//===----------------------------------------------------------------------===//

TEST(PipelineText, ParsesNamesTrimsWhitespace) {
  Expected<std::vector<std::string>> P =
      parsePipelineText(" normalize , unroll,fold ");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(*P, (std::vector<std::string>{"normalize", "unroll", "fold"}));
}

TEST(PipelineText, RejectsUnknownEmptyAndBlank) {
  Expected<std::vector<std::string>> Unknown = parsePipelineText("nope");
  ASSERT_FALSE(static_cast<bool>(Unknown));
  EXPECT_EQ(Unknown.status().code(), ErrorCode::InvalidInput);
  // The error lists the registered passes so the user can self-serve.
  EXPECT_NE(Unknown.status().message().find("normalize"), std::string::npos);

  EXPECT_FALSE(static_cast<bool>(parsePipelineText("")));
  EXPECT_FALSE(static_cast<bool>(parsePipelineText("normalize,,fold")));
}

TEST(PipelineText, DefaultTextsParseAndMatchTheDocumentedSequence) {
  // STREQ, not EQ: the functions return const char*, and pointer
  // equality with a literal only holds when the build merges identical
  // string constants (true at -O2, false in -O0 coverage builds).
  EXPECT_STREQ(defaultPipelineText(),
               "normalize,stripmine,unroll,normalize,scalar-repl,peel,fold,"
               "layout");
  EXPECT_STREQ(defaultPipelineTextWithInterchange(),
               "normalize,interchange,stripmine,unroll,normalize,scalar-repl,"
               "peel,fold,layout");
  EXPECT_TRUE(static_cast<bool>(parsePipelineText(defaultPipelineText())));
  EXPECT_TRUE(static_cast<bool>(
      parsePipelineText(defaultPipelineTextWithInterchange())));
}

TEST(PipelineBuild, BuildsDefaultWhenTextEmptyAndRunsIt) {
  Kernel K = buildKernel("FIR");
  TransformOptions Opts;
  Opts.Unroll = {2, 2};
  Opts.Layout.NumMemories = 8;
  TransformResult Result(K.clone());
  Expected<PassPipeline> PP = buildPassPipeline("", Opts, Result);
  ASSERT_TRUE(static_cast<bool>(PP));
  EXPECT_EQ(PP->size(), 8u); // the no-interchange default
  AnalysisManager AM;
  EXPECT_TRUE(PP->run(Result.K, AM).isOk());
  EXPECT_TRUE(Result.UnrollApplied);
}

TEST(PipelineBuild, UnknownPassSurfacesAsError) {
  TransformOptions Opts;
  TransformResult Result(buildKernel("FIR"));
  Expected<PassPipeline> PP = buildPassPipeline("normalize,zap", Opts, Result);
  ASSERT_FALSE(static_cast<bool>(PP));
  EXPECT_EQ(PP.status().code(), ErrorCode::InvalidInput);
}

TEST(PipelineBuild, CustomTextRunsOnlyTheNamedPasses) {
  // A fold-only pipeline must not unroll.
  Kernel K = buildKernel("FIR");
  TransformOptions Opts;
  Opts.Unroll = {4, 4};
  Opts.Pipeline = "normalize,fold";
  TransformResult R = applyPipeline(K, Opts);
  ASSERT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_FALSE(R.UnrollApplied);

  Kernel Ref = K.clone();
  normalizeLoops(Ref);
  foldConstants(Ref.body());
  EXPECT_EQ(printKernel(R.K), printKernel(Ref));
}

//===----------------------------------------------------------------------===//
// AnalysisManager caching.
//===----------------------------------------------------------------------===//

TEST(AnalysisManager, CachesPerFingerprintAndCountsHits) {
  Kernel K = buildKernel("MM");
  normalizeLoops(K);
  AnalysisManager AM;
  EXPECT_EQ(AM.hits(), 0u);
  const DependenceInfo &D1 = AM.dependence(K);
  uint64_t MissesAfterFirst = AM.misses();
  EXPECT_GE(MissesAfterFirst, 1u);
  const DependenceInfo &D2 = AM.dependence(K);
  EXPECT_EQ(&D1, &D2); // same cached object
  EXPECT_EQ(AM.misses(), MissesAfterFirst);
  EXPECT_GE(AM.hits(), 1u);
}

TEST(AnalysisManager, RecomputesWhenTheKernelChanges) {
  Kernel K = buildKernel("FIR");
  normalizeLoops(K);
  AnalysisManager AM;
  AM.dependence(K);
  uint64_t Misses = AM.misses();
  // Mutate the kernel: unrolling changes the fingerprint.
  unrollAndJam(K, {2, 1});
  AM.dependence(K);
  EXPECT_GT(AM.misses(), Misses);
}

TEST(AnalysisManager, InvalidateRespectsPreservedSet) {
  Kernel K = buildKernel("FIR");
  normalizeLoops(K);
  AnalysisManager AM;
  AM.dependence(K);
  ASSERT_NE(AM.cachedDependence(), nullptr);

  // Invalidate everything except dependence: it survives.
  AM.invalidate(PreservedAnalyses::none().preserve(AnalysisKind::Dependence));
  EXPECT_NE(AM.cachedDependence(), nullptr);

  // Preserve nothing: it is dropped.
  AM.invalidate(PreservedAnalyses::none());
  EXPECT_EQ(AM.cachedDependence(), nullptr);

  // all() keeps nothing to drop.
  AM.dependence(K);
  AM.invalidate(PreservedAnalyses::all());
  EXPECT_NE(AM.cachedDependence(), nullptr);
}

TEST(AnalysisManager, PipelineContextWarmsDependence) {
  PipelineContext Ctx(buildKernel("MM"));
  EXPECT_NE(Ctx.analyses().cachedDependence(), nullptr);
}

//===----------------------------------------------------------------------===//
// Interchange pass legality and validation.
//===----------------------------------------------------------------------===//

TEST(InterchangePass, RejectsMalformedPermutations) {
  Kernel K = buildKernel("MM");
  for (const std::vector<unsigned> &Bad :
       {std::vector<unsigned>{0, 1},       // wrong size for a 3-nest
        std::vector<unsigned>{0, 0, 1},    // repeated position
        std::vector<unsigned>{0, 1, 7}}) { // out of range
    TransformOptions Opts;
    Opts.Interchange = Bad;
    TransformResult R = applyPipeline(K, Opts);
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.Error.code(), ErrorCode::InvalidInput);
    // Degraded-not-crashed: the fallback kernel is the untransformed
    // source.
    EXPECT_EQ(printKernel(R.K), printKernel(K));
  }
}

TEST(InterchangePass, IdentityAndLegalPermutationsSucceed) {
  Kernel K = buildKernel("MM");
  TransformOptions Identity;
  Identity.Interchange = {0, 1, 2};
  EXPECT_TRUE(applyPipeline(K, Identity).ok());

  TransformOptions Swap;
  Swap.Interchange = {1, 0, 2};
  TransformResult R = applyPipeline(K, Swap);
  EXPECT_TRUE(R.ok()) << R.Error.toString();
  // The permuted kernel differs from the identity result.
  EXPECT_NE(printKernel(R.K), printKernel(applyPipeline(K, Identity).K));
}

TEST(InterchangePass, DependenceViolatingSwapFailsCleanly) {
  // A[i][j] = A[i-1][j+1]: distance (1, -1), lexicographically negative
  // after a swap — the pass must reject it with InvalidInput and hand
  // back the untouched source, never silently produce wrong code.
  DiagnosticEngine Diags;
  auto K = parseKernel("int A[18][18];\n"
                       "for (i = 1; i < 17; i++)\n"
                       "  for (j = 1; j < 17; j++)\n"
                       "    A[i][j] = A[i - 1][j + 1] + 1;\n",
                       "wavefront", Diags);
  ASSERT_TRUE(K.has_value()) << Diags.toString();
  {
    Kernel Probe = K->clone();
    normalizeLoops(Probe);
    ASSERT_FALSE(canInterchange(Probe, 0, 1));
  }
  TransformOptions Opts;
  Opts.Interchange = {1, 0};
  TransformResult R = applyPipeline(*K, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Error.code(), ErrorCode::InvalidInput);
  EXPECT_NE(R.Error.message().find("dependence"), std::string::npos)
      << R.Error.message();
  EXPECT_EQ(printKernel(R.K), printKernel(*K)); // Fallback is the source.
}

//===----------------------------------------------------------------------===//
// Cache-key extension: historical keys are byte-stable.
//===----------------------------------------------------------------------===//

TEST(CacheKeys, UnrollOnlyKeysAreUnchangedByTheNewDimensions) {
  TransformOptions Opts;
  Opts.Layout.NumMemories = 8;
  std::string Base = transformCacheKey(Opts);
  // The new fields serialize to nothing when unset...
  EXPECT_EQ(Base.find(";ic"), std::string::npos);
  EXPECT_EQ(Base.find(";pl"), std::string::npos);

  // ...and to distinct suffixes when set.
  TransformOptions WithPerm = Opts;
  WithPerm.Interchange = {1, 0};
  std::string PermKey = transformCacheKey(WithPerm);
  EXPECT_NE(PermKey, Base);
  EXPECT_NE(PermKey.find(";ic"), std::string::npos);

  TransformOptions WithPipe = Opts;
  WithPipe.Pipeline = "normalize,fold";
  std::string PipeKey = transformCacheKey(WithPipe);
  EXPECT_NE(PipeKey, Base);
  EXPECT_NE(PipeKey.find(";pl"), std::string::npos);

  // Distinct permutations get distinct keys.
  TransformOptions OtherPerm = Opts;
  OtherPerm.Interchange = {0, 1};
  EXPECT_NE(transformCacheKey(OtherPerm), PermKey);
}
