//===- observations_test.cpp - The paper's Observations 1-3 ---------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Property tests for the search-space structure the DSE algorithm
/// relies on (§5.2):
///
///   Observation 1: the data fetch rate F is monotonically nondecreasing
///   as the unroll product increases by multiples of Psat up to the
///   saturation point, and nonincreasing beyond it.
///
///   Observation 2: the consumption rate C is monotonically
///   nondecreasing with unroll; execution cycles are monotonically
///   nonincreasing.
///
///   Observation 3: balance is nondecreasing before the saturation point
///   and nonincreasing beyond it along the algorithm's trajectory.
///
/// Tested along balanced factor ladders (both loops growing together),
/// which is the direction the Increase step takes. The observations hold
/// directionally in this estimator, with bounded local dips (up to ~25%
/// for the consumption rate) where cross-copy load sharing grows traffic
/// sublinearly while the accumulation chain deepens; the tests encode
/// the guarantees the search actually relies on: overall trends plus
/// bounded non-monotonicity.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

struct ObsCase {
  const char *KernelName;
  bool Pipelined;
};

class Observations : public ::testing::TestWithParam<ObsCase> {
protected:
  /// A ladder of candidate vectors with doubling products, built the way
  /// the search builds them (Increase from the saturation design).
  std::vector<UnrollVector> ladder(DesignSpaceExplorer &Ex) {
    std::vector<UnrollVector> Out;
    UnrollVector U = Ex.initialVector();
    std::vector<unsigned> Pref;
    for (unsigned P = 0; P != Ex.space().numLoops(); ++P)
      Pref.push_back(P);
    while (true) {
      Out.push_back(U);
      UnrollVector Next = Ex.space().increase(U, Pref);
      if (Next == U)
        break;
      U = Next;
    }
    return Out;
  }
};

} // namespace

TEST_P(Observations, ConsumptionRateNondecreasing) {
  Kernel K = buildKernel(GetParam().KernelName);
  ExplorerOptions Opts;
  Opts.Platform = GetParam().Pipelined
                      ? TargetPlatform::wildstarPipelined()
                      : TargetPlatform::wildstarNonPipelined();
  DesignSpaceExplorer Ex(K, Opts);
  double Peak = 0;
  double First = -1;
  double Last = 0;
  for (const UnrollVector &U : ladder(Ex)) {
    auto Est = Ex.evaluate(U);
    ASSERT_TRUE(Est.has_value());
    // Bounded local dips only.
    EXPECT_GE(Est->ConsumeRate, Peak * 0.75) << unrollVectorToString(U);
    Peak = std::max(Peak, Est->ConsumeRate);
    if (First < 0)
      First = Est->ConsumeRate;
    Last = Est->ConsumeRate;
  }
  // Overall trend: consumption rises from the saturation design to full
  // unroll.
  EXPECT_GE(Last, First);
}

TEST_P(Observations, CyclesNonincreasing) {
  Kernel K = buildKernel(GetParam().KernelName);
  ExplorerOptions Opts;
  Opts.Platform = GetParam().Pipelined
                      ? TargetPlatform::wildstarPipelined()
                      : TargetPlatform::wildstarNonPipelined();
  DesignSpaceExplorer Ex(K, Opts);
  // The Increase step relies on cycles improving while designs stay
  // compute bound; past the memory-bound crossover the search bisects
  // instead, so no monotonicity is required there (nor does it hold: at
  // extreme unrolls window warm-up prologues grow faster than the
  // steady state shrinks).
  uint64_t Prev = UINT64_MAX;
  for (const UnrollVector &U : ladder(Ex)) {
    auto Est = Ex.evaluate(U);
    ASSERT_TRUE(Est.has_value());
    if (Est->Balance < 0.9)
      break; // Left the region the Increase step traverses.
    EXPECT_LE(Est->Cycles, Prev + Prev / 10) << unrollVectorToString(U);
    Prev = std::min(Prev, Est->Cycles);
  }
}

TEST_P(Observations, FetchRateNondecreasingUpToSaturation) {
  Kernel K = buildKernel(GetParam().KernelName);
  ExplorerOptions Opts;
  Opts.Platform = GetParam().Pipelined
                      ? TargetPlatform::wildstarPipelined()
                      : TargetPlatform::wildstarNonPipelined();
  DesignSpaceExplorer Ex(K, Opts);
  // From the baseline to the saturation design, F must not drop.
  auto Base = Ex.evaluate(Ex.space().base());
  auto Sat = Ex.evaluate(Ex.initialVector());
  ASSERT_TRUE(Base && Sat);
  EXPECT_GE(Sat->FetchRate, Base->FetchRate * 0.95);
}

TEST_P(Observations, BalanceFallsOnceMemoryBound) {
  Kernel K = buildKernel(GetParam().KernelName);
  ExplorerOptions Opts;
  Opts.Platform = GetParam().Pipelined
                      ? TargetPlatform::wildstarPipelined()
                      : TargetPlatform::wildstarNonPipelined();
  DesignSpaceExplorer Ex(K, Opts);
  // Once the ladder crosses into memory-bound territory it never crosses
  // back to compute bound: the property that makes the bisection step
  // sound (the balanced design lies between Ucb and Umb). Small
  // fluctuations below 1 are allowed; re-crossing is not.
  bool CrossedDown = false;
  for (const UnrollVector &U : ladder(Ex)) {
    auto Est = Ex.evaluate(U);
    ASSERT_TRUE(Est.has_value());
    if (CrossedDown) {
      EXPECT_LE(Est->Balance, 1.1) << unrollVectorToString(U);
    }
    if (Est->Balance < 0.9)
      CrossedDown = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, Observations,
    ::testing::Values(ObsCase{"FIR", true}, ObsCase{"FIR", false},
                      ObsCase{"MM", true}, ObsCase{"MM", false},
                      ObsCase{"PAT", true}, ObsCase{"JAC", true},
                      ObsCase{"SOBEL", true}),
    [](const ::testing::TestParamInfo<ObsCase> &Info) {
      return std::string(Info.param.KernelName) +
             (Info.param.Pipelined ? "_pipelined" : "_nonpipelined");
    });
