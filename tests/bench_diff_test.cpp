//===- bench_diff_test.cpp - Golden-oracle tests for bench_diff -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the real bench_diff binary against committed fixture reports and
/// pins its observable contract: exit codes, the regression gate, the
/// missing-section tolerances, and — for the two load-bearing paths —
/// the byte-exact output against golden files. The tool is CI's perf
/// tripwire; if its output or exit codes drift silently, regression
/// gating drifts with them. Regenerate goldens with DEFACTO_REGOLDEN=1
/// after a deliberate, reviewed format change.
///
/// Paths come from the build: BENCH_DIFF_BIN is the tool binary,
/// BENCH_FIXTURE_DIR the committed fixtures. The tool runs with the
/// fixture directory as its cwd so paths in the output stay relative
/// and machine-independent.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct ToolRun {
  int ExitCode = -1;
  std::string Output; // stdout + stderr, interleaved
};

/// Runs bench_diff with \p Args (cwd = the fixture dir), capturing the
/// merged output and the real process exit code.
ToolRun runBenchDiff(const std::string &Args) {
  std::string Cmd = std::string("cd \"") + BENCH_FIXTURE_DIR + "\" && \"" +
                    BENCH_DIFF_BIN + "\" " + Args + " 2>&1";
  ToolRun R;
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe) {
    R.Output = "popen failed";
    return R;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  return R;
}

std::string goldenPath(const std::string &Name) {
  return std::string(BENCH_FIXTURE_DIR) + "/" + Name;
}

/// Byte-exact oracle comparison; DEFACTO_REGOLDEN=1 rewrites the file.
void expectMatchesGolden(const ToolRun &R, const std::string &Name) {
  std::string Path = goldenPath(Name);
  if (::getenv("DEFACTO_REGOLDEN")) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << R.Output;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with DEFACTO_REGOLDEN=1 to create)";
  std::ostringstream OS;
  OS << In.rdbuf();
  EXPECT_EQ(R.Output, OS.str()) << "output drifted from " << Path;
}

//===----------------------------------------------------------------------===//
// The clean-comparison path
//===----------------------------------------------------------------------===//

TEST(BenchDiff, ImprovementComparesCleanByteForByte) {
  ToolRun R = runBenchDiff("bench_base.json bench_improved.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("no evals/sec regression beyond 10%"),
            std::string::npos)
      << R.Output;
  expectMatchesGolden(R, "bench_diff_improvement.golden");
}

TEST(BenchDiff, IdenticalReportsCompareClean) {
  ToolRun R = runBenchDiff("bench_base.json bench_base.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  // Every delta column is exactly +0.0%.
  EXPECT_NE(R.Output.find("+0.0%"), std::string::npos) << R.Output;
  EXPECT_EQ(R.Output.find("regression beyond 10%:"), std::string::npos)
      << R.Output;
}

//===----------------------------------------------------------------------===//
// The regression gate
//===----------------------------------------------------------------------===//

TEST(BenchDiff, RegressionWarnsButExitsZeroWithoutTheGate) {
  ToolRun R = runBenchDiff("bench_base.json bench_regressed.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("warning: regression beyond 10%"),
            std::string::npos)
      << R.Output;
  // Only the halved sweep trips: on @1 threads, 4000 -> 2000.
  EXPECT_NE(R.Output.find("on @1 threads: 4000.0 -> 2000.0 evals/s"),
            std::string::npos)
      << R.Output;
}

TEST(BenchDiff, RegressionGatesToExitOneByteForByte) {
  ToolRun R = runBenchDiff(
      "bench_base.json bench_regressed.json --fail-on-regression");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("error: regression beyond 10%"), std::string::npos)
      << R.Output;
  expectMatchesGolden(R, "bench_diff_regression.golden");
}

TEST(BenchDiff, ThresholdFlagLoosensTheGate) {
  // The worst sweep drops 50%; a 60% threshold lets it through.
  ToolRun R = runBenchDiff("bench_base.json bench_regressed.json "
                           "--fail-on-regression --threshold-pct=60");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("no evals/sec regression beyond 60%"),
            std::string::npos)
      << R.Output;
}

//===----------------------------------------------------------------------===//
// Schema tolerances: missing sections and unmatched sweeps
//===----------------------------------------------------------------------===//

TEST(BenchDiff, MissingBaselineLatencySectionIsSkippedNotFatal) {
  ToolRun R = runBenchDiff("bench_base_nolat.json bench_improved.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("baseline has no latency_percentiles section"),
            std::string::npos)
      << R.Output;
}

TEST(BenchDiff, UnmatchedSweepsShowDashesInsteadOfFailing) {
  // The current report carries a (verify, 2) sweep the baseline lacks:
  // its baseline columns render "-" and nothing regresses.
  ToolRun R = runBenchDiff("bench_base.json bench_mismatch.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("verify"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find('-'), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("no evals/sec regression beyond 10%"),
            std::string::npos)
      << R.Output;
}

//===----------------------------------------------------------------------===//
// Failure modes: unreadable input and usage errors
//===----------------------------------------------------------------------===//

TEST(BenchDiff, UnreadableBaselineExitsOne) {
  ToolRun R = runBenchDiff("no_such_file.json bench_improved.json");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("cannot open no_such_file.json"),
            std::string::npos)
      << R.Output;
}

TEST(BenchDiff, GarbageJsonExitsOne) {
  ToolRun R = runBenchDiff("bench_base.json bench_garbage.json");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("bench_garbage.json"), std::string::npos)
      << R.Output;
}

TEST(BenchDiff, MissingArgumentsExitTwoWithUsage) {
  for (const char *Args : {"", "bench_base.json",
                           "bench_base.json bench_improved.json extra.json"}) {
    ToolRun R = runBenchDiff(Args);
    EXPECT_EQ(R.ExitCode, 2) << "args: '" << Args << "'\n" << R.Output;
    EXPECT_NE(R.Output.find("usage: bench_diff"), std::string::npos)
        << R.Output;
  }
}

} // namespace
