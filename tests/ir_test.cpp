//===- ir_test.cpp - Unit tests for the IR library -------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/IR/Kernel.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

/// Builds: int A[8]; int s;
/// for (i = 0; i < 8; i++) A[i] = A[i] + s;
Kernel makeSimpleKernel() {
  Kernel K("simple");
  ArrayDecl *A = K.makeArray("A", ScalarType::Int32, {8});
  ScalarDecl *S = K.makeScalar("s", ScalarType::Int32);
  int Id = K.allocateLoopId();
  auto Loop = std::make_unique<ForStmt>(Id, "i", 0, 8, 1);
  auto Access = [&] {
    return std::make_unique<ArrayAccessExpr>(
        A, std::vector<AffineExpr>{AffineExpr::term(Id, 1)});
  };
  Loop->body().push_back(std::make_unique<AssignStmt>(
      Access(), std::make_unique<BinaryExpr>(
                    BinaryOp::Add, Access(),
                    std::make_unique<ScalarRefExpr>(S))));
  K.body().push_back(std::move(Loop));
  return K;
}

} // namespace

TEST(Type, Widths) {
  EXPECT_EQ(bitWidth(ScalarType::Int8), 8u);
  EXPECT_EQ(bitWidth(ScalarType::Int16), 16u);
  EXPECT_EQ(bitWidth(ScalarType::Int32), 32u);
  EXPECT_EQ(typeName(ScalarType::Int8), "char");
  EXPECT_EQ(typeName(ScalarType::Int16), "short");
  EXPECT_EQ(typeName(ScalarType::Int32), "int");
}

TEST(Type, Truncation) {
  EXPECT_EQ(truncateToType(127, ScalarType::Int8), 127);
  EXPECT_EQ(truncateToType(128, ScalarType::Int8), -128);
  EXPECT_EQ(truncateToType(-129, ScalarType::Int8), 127);
  EXPECT_EQ(truncateToType(65535, ScalarType::Int16), -1);
  EXPECT_EQ(truncateToType(1, ScalarType::Int32), 1);
  EXPECT_EQ(truncateToType((1LL << 31), ScalarType::Int32),
            -(1LL << 31));
}

TEST(Decl, ArrayBasics) {
  ArrayDecl A("img", ScalarType::Int16, {4, 6});
  EXPECT_EQ(A.numDims(), 2u);
  EXPECT_EQ(A.dim(0), 4);
  EXPECT_EQ(A.dim(1), 6);
  EXPECT_EQ(A.numElements(), 24);
  EXPECT_EQ(A.virtualMemId(), -1);
  EXPECT_EQ(A.physicalMemId(), -1);
  EXPECT_EQ(A.renamedFrom(), nullptr);
}

TEST(Decl, Renaming) {
  ArrayDecl Origin("A", ScalarType::Int32, {16});
  ArrayDecl Bank("A0", ScalarType::Int32, {8});
  Bank.setRenaming(&Origin, 0, 1, 2);
  EXPECT_EQ(Bank.renamedFrom(), &Origin);
  EXPECT_EQ(Bank.bankDim(), 0u);
  EXPECT_EQ(Bank.bankOffset(), 1);
  EXPECT_EQ(Bank.bankStride(), 2);
}

TEST(ForStmt, TripCount) {
  ForStmt A(0, "i", 0, 8, 1);
  EXPECT_EQ(A.tripCount(), 8);
  ForStmt B(1, "j", 0, 8, 3);
  EXPECT_EQ(B.tripCount(), 3); // 0, 3, 6
  ForStmt C(2, "k", 5, 5, 1);
  EXPECT_EQ(C.tripCount(), 0);
  ForStmt D(3, "l", 2, 10, 2);
  EXPECT_EQ(D.tripCount(), 4);
}

TEST(Expr, CloneDeep) {
  ScalarDecl S("x", ScalarType::Int32);
  auto E = std::make_unique<BinaryExpr>(
      BinaryOp::Mul, std::make_unique<ScalarRefExpr>(&S),
      std::make_unique<IntLitExpr>(3));
  ExprPtr C = E->clone();
  EXPECT_TRUE(exprEquals(E.get(), C.get()));
  // The clone is a distinct tree.
  EXPECT_NE(E.get(), C.get());
  EXPECT_NE(cast<BinaryExpr>(E.get())->lhs(),
            cast<BinaryExpr>(C.get())->lhs());
}

TEST(Expr, CloneCopiesSteadyPort) {
  ArrayDecl A("A", ScalarType::Int32, {8});
  ArrayAccessExpr Acc(&A, {AffineExpr(3)});
  Acc.setSteadyStatePort(2);
  ExprPtr C = Acc.clone();
  EXPECT_EQ(cast<ArrayAccessExpr>(C.get())->steadyStatePort(), 2);
}

TEST(Kernel, CloneRemapsDecls) {
  Kernel K = makeSimpleKernel();
  Kernel C = K.clone();
  EXPECT_EQ(C.name(), "simple");
  ASSERT_NE(C.findArray("A"), nullptr);
  ASSERT_NE(C.findScalar("s"), nullptr);
  EXPECT_NE(C.findArray("A"), K.findArray("A"));

  // Every access in the clone must reference the clone's declarations.
  walkExprsInStmts(C.body(), [&](Expr *E) {
    if (auto *AA = dyn_cast<ArrayAccessExpr>(E))
      EXPECT_EQ(AA->array(), C.findArray("A"));
    if (auto *SR = dyn_cast<ScalarRefExpr>(E))
      EXPECT_EQ(SR->decl(), C.findScalar("s"));
  });
  EXPECT_TRUE(isKernelValid(C));
}

TEST(Kernel, TempScalarNamesUnique) {
  Kernel K("t");
  ScalarDecl *A = K.makeTempScalar("tmp", ScalarType::Int32);
  ScalarDecl *B = K.makeTempScalar("tmp", ScalarType::Int32);
  EXPECT_NE(A->name(), B->name());
  EXPECT_TRUE(A->isCompilerTemp());
}

TEST(Kernel, TopLoop) {
  Kernel K = makeSimpleKernel();
  ASSERT_NE(K.topLoop(), nullptr);
  EXPECT_EQ(K.topLoop()->indexName(), "i");
  K.body().push_back(std::make_unique<RotateStmt>(
      std::vector<const ScalarDecl *>{K.findScalar("s"),
                                      K.makeScalar("s2", ScalarType::Int32)}));
  EXPECT_EQ(K.topLoop(), nullptr); // No longer a single top statement.
}

TEST(IRUtils, CollectAccessesClassifiesWrites) {
  Kernel K = makeSimpleKernel();
  std::vector<AccessInfo> Accs = collectArrayAccesses(K);
  ASSERT_EQ(Accs.size(), 2u);
  EXPECT_TRUE(Accs[0].IsWrite);  // Destination first.
  EXPECT_FALSE(Accs[1].IsWrite);
}

TEST(IRUtils, PerfectNest) {
  Kernel K("nest");
  int I = K.allocateLoopId(), J = K.allocateLoopId();
  auto Outer = std::make_unique<ForStmt>(I, "i", 0, 4, 1);
  auto Inner = std::make_unique<ForStmt>(J, "j", 0, 4, 1);
  Outer->body().push_back(std::move(Inner));
  K.body().push_back(std::move(Outer));
  std::vector<ForStmt *> Nest = perfectNest(K.topLoop());
  ASSERT_EQ(Nest.size(), 2u);
  EXPECT_EQ(Nest[0]->indexName(), "i");
  EXPECT_EQ(Nest[1]->indexName(), "j");
}

TEST(IRUtils, SubstituteLoopRewritesSubscriptsAndIndexUses) {
  Kernel K = makeSimpleKernel();
  int Id = K.topLoop()->loopId();
  // Add a guard using the loop index directly.
  auto Guard = std::make_unique<IfStmt>(std::make_unique<BinaryExpr>(
      BinaryOp::CmpEq, std::make_unique<LoopIndexExpr>(Id),
      std::make_unique<IntLitExpr>(0)));
  K.topLoop()->body().push_back(std::move(Guard));

  substituteLoopInStmts(K.topLoop()->body(), Id,
                        AffineExpr::term(Id, 1, 3));
  std::vector<AccessInfo> Accs = collectArrayAccesses(K);
  for (const AccessInfo &Info : Accs)
    EXPECT_EQ(Info.Access->subscript(0).constant(), 3);
}

TEST(IRUtils, ExprToAffine) {
  // (2 * i) + (j - 1) is affine.
  auto E = std::make_unique<BinaryExpr>(
      BinaryOp::Add,
      std::make_unique<BinaryExpr>(BinaryOp::Mul,
                                   std::make_unique<IntLitExpr>(2),
                                   std::make_unique<LoopIndexExpr>(0)),
      std::make_unique<BinaryExpr>(BinaryOp::Sub,
                                   std::make_unique<LoopIndexExpr>(1),
                                   std::make_unique<IntLitExpr>(1)));
  auto A = exprToAffine(E.get());
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->coeff(0), 2);
  EXPECT_EQ(A->coeff(1), 1);
  EXPECT_EQ(A->constant(), -1);

  // i * j is not affine.
  auto NonAffine = std::make_unique<BinaryExpr>(
      BinaryOp::Mul, std::make_unique<LoopIndexExpr>(0),
      std::make_unique<LoopIndexExpr>(1));
  EXPECT_FALSE(exprToAffine(NonAffine.get()).has_value());

  // Negation is affine.
  auto Neg = std::make_unique<UnaryExpr>(
      UnaryOp::Neg, std::make_unique<LoopIndexExpr>(0));
  ASSERT_TRUE(exprToAffine(Neg.get()).has_value());
  EXPECT_EQ(exprToAffine(Neg.get())->coeff(0), -1);
}

TEST(IRUtils, AffineToExprRoundTrip) {
  AffineExpr A =
      AffineExpr::term(0, 2).add(AffineExpr::term(1, -3)).addConstant(7);
  ExprPtr E = affineToExpr(A);
  auto Back = exprToAffine(E.get());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, A);
}

TEST(IRUtils, CountStmts) {
  Kernel K = makeSimpleKernel();
  StmtCounts Counts = countStmts(K.body());
  EXPECT_EQ(Counts.For, 1u);
  EXPECT_EQ(Counts.Assign, 1u);
  EXPECT_EQ(Counts.If, 0u);
  EXPECT_EQ(Counts.Rotate, 0u);
}

TEST(Verifier, AcceptsWellFormed) {
  Kernel K = makeSimpleKernel();
  EXPECT_TRUE(verifyKernel(K).empty());
}

TEST(Verifier, RejectsForeignDecl) {
  Kernel K = makeSimpleKernel();
  ArrayDecl Foreign("F", ScalarType::Int32, {4});
  K.topLoop()->body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ArrayAccessExpr>(
          &Foreign, std::vector<AffineExpr>{AffineExpr(0)}),
      std::make_unique<IntLitExpr>(1)));
  std::vector<std::string> Problems = verifyKernel(K);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("not owned"), std::string::npos);
}

TEST(Verifier, RejectsOutOfScopeLoopId) {
  Kernel K = makeSimpleKernel();
  int Bogus = K.allocateLoopId();
  K.topLoop()->body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ScalarRefExpr>(K.findScalar("s")),
      std::make_unique<LoopIndexExpr>(Bogus)));
  EXPECT_FALSE(verifyKernel(K).empty());
}

TEST(Verifier, RejectsRankMismatch) {
  Kernel K("rank");
  ArrayDecl *A = K.makeArray("A", ScalarType::Int32, {4, 4});
  K.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ArrayAccessExpr>(
          A, std::vector<AffineExpr>{AffineExpr(0)}),
      std::make_unique<IntLitExpr>(1)));
  std::vector<std::string> Problems = verifyKernel(K);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("dimensions"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateLoopIds) {
  Kernel K("dup");
  int Id = K.allocateLoopId();
  K.body().push_back(std::make_unique<ForStmt>(Id, "i", 0, 2, 1));
  K.body().push_back(std::make_unique<ForStmt>(Id, "j", 0, 2, 1));
  EXPECT_FALSE(verifyKernel(K).empty());
}

TEST(Verifier, RejectsShortRotate) {
  Kernel K("rot");
  ScalarDecl *S = K.makeScalar("s", ScalarType::Int32);
  K.body().push_back(std::make_unique<RotateStmt>(
      std::vector<const ScalarDecl *>{S}));
  EXPECT_FALSE(verifyKernel(K).empty());
}

TEST(Printer, RendersCLikeText) {
  Kernel K = makeSimpleKernel();
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find("int A[8];"), std::string::npos);
  EXPECT_NE(Text.find("for (i = 0; i < 8; i += 1)"), std::string::npos);
  EXPECT_NE(Text.find("A[i] = (A[i] + s);"), std::string::npos);
}

TEST(Printer, RendersRotateAndSelect) {
  Kernel K("p");
  ScalarDecl *A = K.makeScalar("a", ScalarType::Int32);
  ScalarDecl *B = K.makeScalar("b", ScalarType::Int32);
  K.body().push_back(std::make_unique<RotateStmt>(
      std::vector<const ScalarDecl *>{A, B}));
  K.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ScalarRefExpr>(A),
      std::make_unique<SelectExpr>(std::make_unique<IntLitExpr>(1),
                                   std::make_unique<ScalarRefExpr>(B),
                                   std::make_unique<IntLitExpr>(0))));
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find("rotate_registers(a, b);"), std::string::npos);
  EXPECT_NE(Text.find("(1 ? b : 0)"), std::string::npos);
}
