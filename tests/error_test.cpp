//===- error_test.cpp - Status/Expected error model tests -----------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Support/Error.h"

#include "defacto/Frontend/Parser.h"
#include "defacto/IR/Kernel.h"
#include "defacto/IR/KernelBuilder.h"
#include "defacto/Transforms/Pipeline.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_EQ(S.message(), "");
  EXPECT_EQ(S.toString(), "ok");
  EXPECT_EQ(S, Status::ok());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::OutOfBounds, "index 9 of A[4]");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::OutOfBounds);
  EXPECT_EQ(S.message(), "index 9 of A[4]");
  EXPECT_EQ(S.toString(), "out_of_bounds: index 9 of A[4]");
  EXPECT_NE(S, Status::ok());
  EXPECT_NE(S, Status::error(ErrorCode::OutOfBounds, "other"));
  EXPECT_EQ(S, Status::error(ErrorCode::OutOfBounds, "index 9 of A[4]"));
}

TEST(Status, EveryCodeHasAStableName) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::InvalidInput), "invalid_input");
  EXPECT_STREQ(errorCodeName(ErrorCode::OutOfBounds), "out_of_bounds");
  EXPECT_STREQ(errorCodeName(ErrorCode::StepLimitExceeded),
               "step_limit_exceeded");
  EXPECT_STREQ(errorCodeName(ErrorCode::MalformedIR), "malformed_ir");
  EXPECT_STREQ(errorCodeName(ErrorCode::EstimationFailed),
               "estimation_failed");
  EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(errorCodeName(ErrorCode::BudgetExhausted),
               "budget_exhausted");
  EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(Expected, HoldsValue) {
  Expected<int64_t> E(42);
  ASSERT_TRUE(E.hasValue());
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
  EXPECT_EQ(E.value(), 42);
  EXPECT_TRUE(E.status().isOk());
  EXPECT_EQ(E, Expected<int64_t>(42));
  EXPECT_NE(E, Expected<int64_t>(43));
}

TEST(Expected, HoldsError) {
  Expected<int64_t> E(Status::error(ErrorCode::StepLimitExceeded, "boom"));
  EXPECT_FALSE(E.hasValue());
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.status().code(), ErrorCode::StepLimitExceeded);
  EXPECT_NE(E, Expected<int64_t>(42));
  EXPECT_EQ(E, Expected<int64_t>(
                   Status::error(ErrorCode::StepLimitExceeded, "boom")));
}

TEST(Expected, TakeValueMovesOutMoveOnlyPayloads) {
  KernelBuilder B("tk");
  B.array("A", ScalarType::Int32, {4});
  auto I = B.beginLoop("i", 0, 4);
  (void)I;
  B.endLoop();
  Expected<Kernel> E = std::move(B).finish();
  ASSERT_TRUE(E.hasValue());
  Kernel K = E.takeValue();
  EXPECT_EQ(K.name(), "tk");
}

TEST(Expected, ArrowReachesMembers) {
  Expected<std::string> E(std::string("abc"));
  EXPECT_EQ(E->size(), 3u);
}

TEST(Error, TryMakeArrayRejectsBadDeclarations) {
  Kernel K("k");
  ASSERT_TRUE(K.tryMakeArray("A", ScalarType::Int32, {4}).hasValue());
  // Duplicate name.
  Expected<ArrayDecl *> Dup = K.tryMakeArray("A", ScalarType::Int32, {4});
  ASSERT_FALSE(Dup.hasValue());
  EXPECT_EQ(Dup.status().code(), ErrorCode::InvalidInput);
  // No dimensions.
  EXPECT_FALSE(K.tryMakeArray("B", ScalarType::Int32, {}).hasValue());
  // Non-positive dimension.
  EXPECT_FALSE(K.tryMakeArray("C", ScalarType::Int32, {4, 0}).hasValue());
  EXPECT_FALSE(K.tryMakeArray("D", ScalarType::Int32, {-2}).hasValue());
  // A scalar of the same name is a clash, too.
  ASSERT_TRUE(K.tryMakeScalar("s", ScalarType::Int32).hasValue());
  EXPECT_FALSE(K.tryMakeArray("s", ScalarType::Int32, {4}).hasValue());
  EXPECT_FALSE(K.tryMakeScalar("A", ScalarType::Int32).hasValue());
}

TEST(Error, UnbalancedBuilderReportsMalformedIR) {
  KernelBuilder B("open");
  B.array("A", ScalarType::Int32, {4});
  auto I = B.beginLoop("i", 0, 4);
  (void)I;
  // Missing endLoop().
  Expected<Kernel> E = std::move(B).finish();
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.status().code(), ErrorCode::MalformedIR);
  EXPECT_NE(E.status().message().find("loop"), std::string::npos);
}

TEST(Error, PipelineSurfacesLayoutFailureWithoutAborting) {
  // An impossible layout request must come back as a TransformResult
  // error with the source kernel intact, not a process abort.
  DiagnosticEngine Diags;
  auto K = parseKernel("int A[8]; int s;\n"
                       "for (i = 0; i < 8; i++) s = s + A[i];\n",
                       "k", Diags);
  ASSERT_TRUE(K.has_value());
  TransformOptions TO;
  TransformResult R = applyPipeline(*K, TO);
  EXPECT_TRUE(R.ok()) << R.Error.toString();
  EXPECT_TRUE(R.Error.isOk());
}
