//===- serve_test.cpp - DSE daemon core tests -----------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// In-process tests of DseServer over a real Unix-domain socket: warm-cache
// behavior (a repeat request hits the shared cache, answers faster, and
// returns a bit-identical winner and decision digest — including against a
// standalone BatchExplorer run), admission backpressure, request deadlines,
// error replies, and journal-backed restart resume.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Serve/Server.h"
#include "defacto/Support/MetricsSampler.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <unistd.h>

using namespace defacto;

namespace {

std::string uniquePath(const char *Stem) {
  static std::atomic<unsigned> Counter{0};
  return std::string("/tmp/defacto_") + Stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(Counter.fetch_add(1));
}

/// Sends one request line and returns the parsed reply.
ServeResponse roundTrip(UnixConnection &Conn, const ServeRequest &Req) {
  Status Sent = Conn.sendLine(Req.toJson());
  EXPECT_TRUE(Sent.isOk()) << Sent.message();
  Expected<std::optional<std::string>> Line = Conn.recvLine();
  EXPECT_TRUE(Line && Line.value()) << "connection closed";
  Expected<ServeResponse> R = parseServeResponse(*Line.value());
  EXPECT_TRUE(static_cast<bool>(R)) << R.status().message();
  return R ? *R : ServeResponse();
}

ServeResponse oneShot(const std::string &Socket, const ServeRequest &Req) {
  Expected<UnixConnection> Conn = UnixConnection::connectTo(Socket);
  EXPECT_TRUE(static_cast<bool>(Conn)) << Conn.status().message();
  return roundTrip(*Conn, Req);
}

ServeRequest exploreFIR(unsigned Budget = 30) {
  ServeRequest Req;
  Req.Kernel = "FIR";
  Req.Budget = Budget;
  Req.WantDigest = true;
  return Req;
}

class ServeTest : public ::testing::Test {
protected:
  void startServer(ServeOptions Opts) {
    Opts.SocketPath = SocketPath = uniquePath("serve_test") + ".sock";
    Server = std::make_unique<DseServer>(std::move(Opts));
    Status S = Server->start();
    ASSERT_TRUE(S.isOk()) << S.message();
  }

  void TearDown() override {
    if (Server)
      Server->stop();
  }

  std::string SocketPath;
  std::unique_ptr<DseServer> Server;
};

//===----------------------------------------------------------------------===//
// Warm-cache behavior
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, RepeatRequestServedWarmAndBitIdentical) {
  startServer({});
  ServeResponse Cold = oneShot(SocketPath, exploreFIR());
  ASSERT_EQ(Cold.RStatus, ServeStatus::Ok) << Cold.Reason;
  EXPECT_FALSE(Cold.Warm);
  EXPECT_GT(Cold.CacheMisses, 0u);
  EXPECT_FALSE(Cold.Digest.empty());

  ServeResponse Hot = oneShot(SocketPath, exploreFIR());
  ASSERT_EQ(Hot.RStatus, ServeStatus::Ok) << Hot.Reason;
  EXPECT_TRUE(Hot.Warm);
  EXPECT_EQ(Hot.CacheMisses, 0u);
  EXPECT_GT(Hot.CacheHits, 0u);

  // The warm answer is the cold answer, bit for bit: same winner, same
  // estimate (slices travel as hexfloat, so == is exact), same walk.
  EXPECT_EQ(Hot.Selected, Cold.Selected);
  EXPECT_EQ(Hot.Cycles, Cold.Cycles);
  EXPECT_EQ(Hot.Slices, Cold.Slices);
  EXPECT_EQ(Hot.Digest, Cold.Digest);

  // And it is faster: the cold run pays the estimator, the warm one only
  // the cache walk. Generous 2x margin (observed ~16x) to stay unflaky.
  EXPECT_LT(Hot.LatencyUs, Cold.LatencyUs / 2)
      << "warm=" << Hot.LatencyUs << "us cold=" << Cold.LatencyUs << "us";

  EXPECT_EQ(Server->requestsReceived(), 2u);
  EXPECT_EQ(Server->warmHits(), 1u);
}

TEST_F(ServeTest, ServedDigestMatchesStandaloneRun) {
  startServer({});
  ServeResponse Served = oneShot(SocketPath, exploreFIR());
  ASSERT_EQ(Served.RStatus, ServeStatus::Ok) << Served.Reason;

  // The same exploration, run standalone the way the daemon runs it:
  // one BatchExplorer job with a fresh cache and its own recorder.
  auto Recorder = std::make_shared<TraceRecorder>();
  Recorder->setEnabled(true);
  ExplorerOptions O;
  O.Platform = TargetPlatform::wildstarPipelined();
  O.MaxEvaluations = 30;
  O.FastPath = FastPathMode::On;
  O.StageCache = std::make_shared<TransformStageCache>();
  O.Trace = Recorder;
  BatchOptions B;
  B.Cache = std::make_shared<EstimateCache>();
  BatchExplorer Engine(B);
  Kernel K = buildKernel("FIR");
  // The digest lines embed the job's track label, so the standalone run
  // must carry the same deterministic request identity the daemon used.
  std::string JobName = DseServer::requestJobName(exploreFIR(), K);
  Engine.addJob(
      BatchJob(JobName, std::move(K), std::move(O), std::string("guided")));
  std::vector<BatchResult> Results = Engine.runAll();
  ASSERT_EQ(Results.size(), 1u);
  const ExplorationResult &E = Results[0].Result;

  EXPECT_EQ(Served.Selected, E.SelectedPoint.isUnrollOnly()
                                 ? unrollVectorToString(E.Selected)
                                 : E.SelectedPoint.toString());
  EXPECT_EQ(Served.Cycles, E.SelectedEstimate.Cycles);
  EXPECT_EQ(Served.Evaluations, E.EvaluationsUsed);
  // Decision digests hash the deterministic decision payloads; equality
  // proves the served walk evaluated exactly the standalone set. The
  // digest lines carry the job's track label, so hash them relabeled.
  std::vector<std::string> Lines = Recorder->decisionDigest();
  ASSERT_FALSE(Lines.empty());
  EXPECT_EQ(Served.Digest.size(), 16u);
  EXPECT_EQ(Served.Digest, digestHash(Lines));
}

TEST_F(ServeTest, BatchStateIsReportedPerReply) {
  startServer({});
  ServeResponse R = oneShot(SocketPath, exploreFIR());
  EXPECT_EQ(R.BatchSeq, 1u);
  EXPECT_EQ(R.BatchSize, 1u);
  EXPECT_GT(R.LatencyUs, 0.0);
  EXPECT_EQ(Server->batchesRun(), 1u);
  EXPECT_GT(Server->estimateCache()->size(), 0u);
}

//===----------------------------------------------------------------------===//
// Backpressure and deadlines
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, ZeroDepthQueueAnswersOverloaded) {
  ServeOptions Opts;
  Opts.MaxQueueDepth = 0; // admit nothing: every explore is a 429
  startServer(std::move(Opts));
  ServeResponse R = oneShot(SocketPath, exploreFIR());
  EXPECT_EQ(R.RStatus, ServeStatus::Overloaded);
  EXPECT_NE(R.Reason.find("queue full"), std::string::npos) << R.Reason;
  EXPECT_EQ(Server->overloads(), 1u);

  // Ping is never queued: it still answers on an overloaded daemon.
  ServeRequest Ping;
  Ping.Cmd = "ping";
  EXPECT_EQ(oneShot(SocketPath, Ping).RStatus, ServeStatus::Pong);
}

TEST_F(ServeTest, ExpiredDeadlineAnsweredWithoutEvaluation) {
  ServeOptions Opts;
  Opts.MaxBatch = 1; // keep the slow job and the doomed one in
  startServer(std::move(Opts)); // separate batches

  // Occupy the single batch worker with a cold MM exploration, then
  // queue a request whose deadline lapses while it waits.
  Expected<UnixConnection> Slow = UnixConnection::connectTo(SocketPath);
  ASSERT_TRUE(static_cast<bool>(Slow));
  ServeRequest Busy;
  Busy.Kernel = "MM";
  Busy.Budget = 60;
  ASSERT_TRUE(Slow->sendLine(Busy.toJson()).isOk());

  Expected<UnixConnection> Doomed = UnixConnection::connectTo(SocketPath);
  ASSERT_TRUE(static_cast<bool>(Doomed));
  ServeRequest Req = exploreFIR();
  Req.DeadlineSeconds = 1e-6;
  ASSERT_TRUE(Doomed->sendLine(Req.toJson()).isOk());

  Expected<std::optional<std::string>> DoomedReply = Doomed->recvLine();
  ASSERT_TRUE(DoomedReply && DoomedReply.value());
  Expected<ServeResponse> R = parseServeResponse(*DoomedReply.value());
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->RStatus, ServeStatus::Deadline);
  EXPECT_EQ(Server->deadlineMisses(), 1u);

  Expected<std::optional<std::string>> SlowReply = Slow->recvLine();
  ASSERT_TRUE(SlowReply && SlowReply.value());
  Expected<ServeResponse> SR = parseServeResponse(*SlowReply.value());
  ASSERT_TRUE(static_cast<bool>(SR));
  EXPECT_EQ(SR->RStatus, ServeStatus::Ok);
}

//===----------------------------------------------------------------------===//
// Validation and protocol errors
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, InvalidRequestsAnsweredWithErrors) {
  startServer({});
  Expected<UnixConnection> Conn = UnixConnection::connectTo(SocketPath);
  ASSERT_TRUE(static_cast<bool>(Conn));

  auto expectError = [&](const std::string &Line,
                         const std::string &ReasonPart) {
    ASSERT_TRUE(Conn->sendLine(Line).isOk());
    Expected<std::optional<std::string>> Reply = Conn->recvLine();
    ASSERT_TRUE(Reply && Reply.value());
    Expected<ServeResponse> R = parseServeResponse(*Reply.value());
    ASSERT_TRUE(static_cast<bool>(R)) << *Reply.value();
    EXPECT_EQ(R->RStatus, ServeStatus::Error) << *Reply.value();
    EXPECT_NE(R->Reason.find(ReasonPart), std::string::npos) << R->Reason;
  };

  expectError("this is not json", "not valid JSON");
  expectError("{\"cmd\":\"fly\"}", "unknown cmd");
  expectError("{\"cmd\":\"explore\"}", "needs \"kernel\" or \"source\"");
  expectError("{\"kernel\":\"NOPE\"}", "unknown kernel 'NOPE'");
  expectError("{\"kernel\":\"FIR\",\"platform\":\"asic\"}",
              "unknown platform 'asic'");
  expectError("{\"kernel\":\"FIR\",\"strategy\":\"psychic\"}",
              "unknown strategy 'psychic'");
  expectError("{\"kernel\":\"FIR\",\"pipeline\":\"warp-drive\"}",
              "bad pipeline");
  expectError("{\"kernel\":\"FIR\",\"deadline_s\":-1}", "non-negative");
  EXPECT_EQ(Server->errorReplies(), 8u);
  // None of these reached the batch engine.
  EXPECT_EQ(Server->batchesRun(), 0u);
}

TEST_F(ServeTest, InlineSourceKernelExplores) {
  startServer({});
  ServeRequest Req;
  Req.Kernel = "tinyfir";
  Req.Source = "int S[24];\n"
               "int C[8];\n"
               "int D[16];\n"
               "for (j = 0; j < 16; j++)\n"
               "  for (i = 0; i < 8; i++)\n"
               "    D[j] = D[j] + (S[i + j] * C[i]);\n";
  Req.Budget = 20;
  ServeResponse R = oneShot(SocketPath, Req);
  ASSERT_TRUE(R.RStatus == ServeStatus::Ok ||
              R.RStatus == ServeStatus::Degraded)
      << R.Reason;
  EXPECT_EQ(R.Kernel, "tinyfir");
  EXPECT_GT(R.Evaluations, 0u);
}

TEST_F(ServeTest, PingReportsWarmState) {
  startServer({});
  ServeRequest Ping;
  Ping.Cmd = "ping";
  ServeResponse Before = oneShot(SocketPath, Ping);
  EXPECT_EQ(Before.RStatus, ServeStatus::Pong);
  EXPECT_EQ(Before.CacheDesigns, 0u);

  oneShot(SocketPath, exploreFIR());
  ServeResponse After = oneShot(SocketPath, Ping);
  EXPECT_GT(After.CacheDesigns, 0u);
  EXPECT_GT(After.StageCacheEntries, 0u);
  EXPECT_EQ(After.Requests, 1u);
}

TEST_F(ServeTest, GaugesRegisterOnSampler) {
  startServer({});
  oneShot(SocketPath, exploreFIR());
  MetricsSampler Sampler{MetricsSamplerOptions{}};
  Server->registerGauges(Sampler);
  MetricsSample S = Sampler.sampleOnce();
  // Gauge values land in the serialized sample the monitor reads.
  for (const char *Name : {"serve_queue_depth", "serve_in_flight",
                           "cache_designs", "stage_entries",
                           "in_flight_evals"})
    EXPECT_NE(S.JsonLine.find(std::string("\"") + Name + "\""),
              std::string::npos)
        << Name << " missing from " << S.JsonLine;
}

//===----------------------------------------------------------------------===//
// Shutdown protocol and journal restart
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, ShutdownCommandUnblocksWaiter) {
  startServer({});
  std::thread Waiter([&] { Server->waitForShutdownRequest(); });
  ServeRequest Req;
  Req.Cmd = "shutdown";
  ServeResponse R = oneShot(SocketPath, Req);
  EXPECT_EQ(R.RStatus, ServeStatus::Bye);
  Waiter.join(); // returns only once the request was observed
  Server->stop();
}

TEST_F(ServeTest, JournalRestartServesFromReplayedState) {
  std::string Journal = uniquePath("serve_journal") + ".jsonl";
  ServeOptions Opts;
  Opts.JournalPath = Journal;
  startServer(std::move(Opts));
  ServeResponse Cold = oneShot(SocketPath, exploreFIR());
  ASSERT_EQ(Cold.RStatus, ServeStatus::Ok) << Cold.Reason;
  EXPECT_FALSE(Cold.Warm);
  Server->stop();
  Server.reset();

  // A restarted daemon replays the journal into its fresh cache before
  // accepting connections: the "first" request after restart is warm
  // and bit-identical to the pre-crash answer.
  ServeOptions Opts2;
  Opts2.JournalPath = Journal;
  startServer(std::move(Opts2));
  EXPECT_GT(Server->resumedEvaluations(), 0u);
  ServeResponse Resumed = oneShot(SocketPath, exploreFIR());
  ASSERT_EQ(Resumed.RStatus, ServeStatus::Ok) << Resumed.Reason;
  EXPECT_TRUE(Resumed.Warm);
  EXPECT_EQ(Resumed.CacheMisses, 0u);
  EXPECT_EQ(Resumed.Selected, Cold.Selected);
  EXPECT_EQ(Resumed.Cycles, Cold.Cycles);
  EXPECT_EQ(Resumed.Slices, Cold.Slices);
  EXPECT_EQ(Resumed.Digest, Cold.Digest);
  std::remove(Journal.c_str());
}

//===----------------------------------------------------------------------===//
// Protocol serialization
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, RequestRoundTrips) {
  ServeRequest R;
  R.Id = "r-42";
  R.Kernel = "MM";
  R.Platform = "wildstar-nonpipelined";
  R.Strategy = "portfolio";
  R.Pipeline = "normalize,unroll";
  R.Budget = 77;
  R.DeadlineSeconds = 1.5;
  R.WantDigest = true;
  Expected<ServeRequest> Back = parseServeRequest(R.toJson());
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.status().message();
  EXPECT_EQ(Back->Id, R.Id);
  EXPECT_EQ(Back->Kernel, R.Kernel);
  EXPECT_EQ(Back->Platform, R.Platform);
  EXPECT_EQ(Back->Strategy, R.Strategy);
  EXPECT_EQ(Back->Pipeline, R.Pipeline);
  EXPECT_EQ(Back->Budget, R.Budget);
  EXPECT_EQ(Back->DeadlineSeconds, R.DeadlineSeconds);
  EXPECT_TRUE(Back->WantDigest);
}

TEST(ServeProtocolTest, ResponseRoundTripsSlicesExactly) {
  ServeResponse R;
  R.RStatus = ServeStatus::Ok;
  R.Id = "x";
  R.Kernel = "FIR";
  R.Strategy = "guided";
  R.Platform = "wildstar-pipelined";
  R.Selected = "(16, 8)";
  R.Cycles = 267;
  R.Slices = 6183.0000000000009; // survives only as hexfloat
  R.Speedup = 31.4;
  R.Evaluations = 7;
  R.Warm = true;
  R.CacheHits = 7;
  R.BatchSeq = 3;
  R.BatchSize = 2;
  R.LatencyUs = 234.4;
  R.Digest = "b2b79999a8694891";
  Expected<ServeResponse> Back = parseServeResponse(R.toJson());
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.status().message();
  EXPECT_EQ(Back->RStatus, ServeStatus::Ok);
  EXPECT_EQ(Back->Selected, R.Selected);
  EXPECT_EQ(Back->Cycles, R.Cycles);
  // Bit-exact double round-trip, the journal guarantee on the wire.
  EXPECT_EQ(std::memcmp(&Back->Slices, &R.Slices, sizeof(double)), 0);
  EXPECT_TRUE(Back->Warm);
  EXPECT_EQ(Back->Digest, R.Digest);
}

TEST(ServeProtocolTest, DigestHashIsOrderSensitiveAndStable) {
  EXPECT_EQ(digestHash({}), digestHash({}));
  EXPECT_NE(digestHash({"a", "b"}), digestHash({"b", "a"}));
  // Line boundaries matter: {"ab"} != {"a","b"}.
  EXPECT_NE(digestHash({"ab"}), digestHash({"a", "b"}));
  EXPECT_EQ(digestHash({"a", "b"}).size(), 16u);
}

} // namespace
