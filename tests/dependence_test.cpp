//===- dependence_test.cpp - Dependence analysis tests --------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Analysis/DependenceAnalysis.h"
#include "defacto/Analysis/UniformlyGenerated.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

Kernel parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto K = parseKernel(Src, "t", Diags);
  EXPECT_TRUE(K.has_value()) << Diags.toString();
  return std::move(*K);
}

} // namespace

TEST(UniformlyGenerated, PairPredicate) {
  Kernel K = parseOrDie("int A[64];\n"
                        "for (i = 0; i < 8; i++)\n"
                        "  for (j = 0; j < 8; j++)\n"
                        "    A[i + j + 1] = A[i + j] + A[2*i + j];\n");
  std::vector<AccessInfo> Accs = collectArrayAccesses(K);
  ASSERT_EQ(Accs.size(), 3u);
  // A[i+j+1] vs A[i+j]: same linear part.
  EXPECT_TRUE(areUniformlyGenerated(Accs[0].Access, Accs[1].Access));
  // A[i+j+1] vs A[2i+j]: different linear part.
  EXPECT_FALSE(areUniformlyGenerated(Accs[0].Access, Accs[2].Access));
}

TEST(UniformlyGenerated, PartitionCounts) {
  Kernel FIR = buildKernel("FIR");
  UGPartition Part = computeUniformlyGenerated(FIR);
  // Reads: D[j], S[i+j], C[i] -> 3 sets; writes: D[j] -> 1 set.
  EXPECT_EQ(Part.numReadSets(), 3u);
  EXPECT_EQ(Part.numWriteSets(), 1u);
  EXPECT_TRUE(Part.isArrayUniform(FIR.findArray("D")));
  EXPECT_TRUE(Part.isArrayUniform(FIR.findArray("S")));
}

TEST(Dependence, FirFlowOnDCarriedByInner) {
  Kernel FIR = buildKernel("FIR");
  DependenceInfo DI = DependenceInfo::compute(FIR);
  ASSERT_EQ(DI.nest().size(), 2u);

  // D[j] = D[j] + ...: flow dependence with distance (0, *) - exact zero
  // in j, star in i (any i reuses the same D element).
  bool Found = false;
  for (const Dependence &D : DI.dependences()) {
    if (D.Kind != DepKind::Flow || D.Src->array()->name() != "D")
      continue;
    Found = true;
    ASSERT_TRUE(D.Consistent);
    ASSERT_EQ(D.Distance.size(), 2u);
    EXPECT_TRUE(D.Distance[0].isExactZero());
    EXPECT_TRUE(D.Distance[1].isStar());
    EXPECT_EQ(D.carrierPosition(), 1);
  }
  EXPECT_TRUE(Found);
}

TEST(Dependence, FirOuterLoopIsParallel) {
  Kernel FIR = buildKernel("FIR");
  DependenceInfo DI = DependenceInfo::compute(FIR);
  EXPECT_TRUE(DI.carriesNoDependence(0));  // j loop: parallel.
  EXPECT_FALSE(DI.carriesNoDependence(1)); // i loop: carries D's flow dep.
}

TEST(Dependence, FirInputReuseOnC) {
  Kernel FIR = buildKernel("FIR");
  DependenceInfo DI = DependenceInfo::compute(FIR);
  // C[i] is reused across j: an input dependence carried by j (star).
  bool Found = false;
  for (const Dependence &D : DI.dependences()) {
    if (D.Kind != DepKind::Input || D.Src->array()->name() != "C")
      continue;
    if (!D.Consistent)
      continue;
    Found = true;
    EXPECT_TRUE(D.Distance[0].isStar());
    EXPECT_TRUE(D.Distance[1].isExactZero());
  }
  EXPECT_TRUE(Found);
}

TEST(Dependence, FirSHasNoConsistentDistance) {
  // S[i+j]'s reuse is underdetermined (the paper's example): any
  // dependence among different S references must be inconsistent.
  Kernel FIR = buildKernel("FIR");
  DependenceInfo DI = DependenceInfo::compute(FIR);
  for (const Dependence &D : DI.dependences()) {
    if (D.Src->array()->name() != "S")
      continue;
    EXPECT_FALSE(D.Consistent);
  }
}

TEST(Dependence, MmOuterLoopsParallel) {
  Kernel MM = buildKernel("MM");
  DependenceInfo DI = DependenceInfo::compute(MM);
  ASSERT_EQ(DI.nest().size(), 3u);
  EXPECT_TRUE(DI.carriesNoDependence(0));  // i
  EXPECT_TRUE(DI.carriesNoDependence(1));  // j
  EXPECT_FALSE(DI.carriesNoDependence(2)); // k carries Z's recurrence.
}

TEST(Dependence, JacobiFullyParallel) {
  Kernel JAC = buildKernel("JAC");
  DependenceInfo DI = DependenceInfo::compute(JAC);
  EXPECT_TRUE(DI.carriesNoDependence(0));
  EXPECT_TRUE(DI.carriesNoDependence(1));
  // But there is consistent input reuse on A with distance 2 in j:
  // A[i][j+1] read again two iterations later as A[i][j-1].
  bool Found = false;
  for (const Dependence &D : DI.dependences()) {
    if (D.Kind != DepKind::Input || !D.Consistent)
      continue;
    if (D.carrierPosition() == 1 && D.Distance[1].isExact() &&
        D.Distance[1].Value == 2)
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(Dependence, ExactDistanceComputation) {
  Kernel K = parseOrDie("int A[32];\n"
                        "for (i = 0; i < 16; i++)\n"
                        "  A[i + 3] = A[i] + 1;\n");
  DependenceInfo DI = DependenceInfo::compute(K);
  bool Found = false;
  for (const Dependence &D : DI.dependences()) {
    if (D.Kind != DepKind::Flow)
      continue;
    Found = true;
    ASSERT_TRUE(D.Consistent);
    EXPECT_EQ(D.Distance[0].Value, 3);
    EXPECT_EQ(D.carrierPosition(), 0);
  }
  EXPECT_TRUE(Found);
  EXPECT_EQ(DI.minCarriedDistance(0), std::optional<int64_t>(3));
}

TEST(Dependence, NoDependenceWhenStridesMiss) {
  // A[2i] and A[2i+1] touch disjoint elements: the GCD test proves
  // independence.
  Kernel K = parseOrDie("int A[32];\n"
                        "for (i = 0; i < 16; i++)\n"
                        "  A[2*i] = A[2*i + 1] + 1;\n");
  DependenceInfo DI = DependenceInfo::compute(K);
  for (const Dependence &D : DI.dependences())
    EXPECT_EQ(D.Kind, DepKind::Input) << "unexpected cross dependence";
  EXPECT_TRUE(DI.carriesNoDependence(0));
}

TEST(Dependence, NoDependenceWhenDistanceExceedsBounds) {
  // Distance 40 exceeds the 16-iteration range: no dependence.
  Kernel K = parseOrDie("int A[64];\n"
                        "for (i = 0; i < 16; i++)\n"
                        "  A[i + 40] = A[i] + 1;\n");
  DependenceInfo DI = DependenceInfo::compute(K);
  EXPECT_TRUE(DI.carriesNoDependence(0));
}

TEST(Dependence, AntiDependenceDetected) {
  Kernel K = parseOrDie("int A[32];\n"
                        "for (i = 0; i < 16; i++)\n"
                        "  A[i] = A[i + 2] + 1;\n");
  DependenceInfo DI = DependenceInfo::compute(K);
  bool FoundAnti = false;
  for (const Dependence &D : DI.dependences())
    if (D.Kind == DepKind::Anti && D.Consistent &&
        D.Distance[0].Value == 2)
      FoundAnti = true;
  EXPECT_TRUE(FoundAnti);
}

TEST(Dependence, OutputSelfDependence) {
  Kernel K = parseOrDie("int A[8]; int s;\n"
                        "for (i = 0; i < 8; i++)\n"
                        "  for (j = 0; j < 8; j++)\n"
                        "    A[i] = j;\n");
  DependenceInfo DI = DependenceInfo::compute(K);
  bool Found = false;
  for (const Dependence &D : DI.dependences())
    if (D.Kind == DepKind::Output && D.Consistent &&
        D.carrierPosition() == 1)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Dependence, TwoDimensionalExact) {
  Kernel K = parseOrDie("int A[16][16];\n"
                        "for (i = 1; i < 15; i++)\n"
                        "  for (j = 1; j < 15; j++)\n"
                        "    A[i][j] = A[i - 1][j] + 1;\n");
  DependenceInfo DI = DependenceInfo::compute(K);
  bool Found = false;
  for (const Dependence &D : DI.dependences()) {
    if (D.Kind != DepKind::Flow || !D.Consistent)
      continue;
    Found = true;
    EXPECT_EQ(D.Distance[0].Value, 1);
    EXPECT_TRUE(D.Distance[1].isExactZero());
    EXPECT_EQ(D.carrierPosition(), 0);
  }
  EXPECT_TRUE(Found);
  EXPECT_FALSE(DI.carriesNoDependence(0));
  EXPECT_TRUE(DI.carriesNoDependence(1));
}

TEST(Dependence, KindNames) {
  EXPECT_STREQ(depKindName(DepKind::Flow), "flow");
  EXPECT_STREQ(depKindName(DepKind::Anti), "anti");
  EXPECT_STREQ(depKindName(DepKind::Output), "output");
  EXPECT_STREQ(depKindName(DepKind::Input), "input");
}
