//===- parser_test.cpp - Unit tests for the C-subset parser ---------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Frontend/Parser.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

std::optional<Kernel> parse(const std::string &Src,
                            std::string *Errors = nullptr) {
  DiagnosticEngine Diags;
  std::optional<Kernel> K = parseKernel(Src, "test", Diags);
  if (Errors)
    *Errors = Diags.toString();
  return K;
}

} // namespace

TEST(Parser, MinimalLoop) {
  auto K = parse("int A[4];\n"
                 "for (i = 0; i < 4; i++) A[i] = 1;\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_TRUE(isKernelValid(*K));
  ASSERT_NE(K->topLoop(), nullptr);
  EXPECT_EQ(K->topLoop()->tripCount(), 4);
}

TEST(Parser, Declarations) {
  auto K = parse("char c1;\n"
                 "short s2;\n"
                 "int m[3][5];\n"
                 "for (i = 0; i < 3; i++) m[i][0] = c1 + s2;\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(K->findScalar("c1")->type(), ScalarType::Int8);
  EXPECT_EQ(K->findScalar("s2")->type(), ScalarType::Int16);
  ASSERT_NE(K->findArray("m"), nullptr);
  EXPECT_EQ(K->findArray("m")->numDims(), 2u);
  EXPECT_EQ(K->findArray("m")->dim(1), 5);
}

TEST(Parser, StepAndInclusiveBound) {
  auto K = parse("int A[16];\n"
                 "for (i = 0; i <= 14; i += 2) A[i] = 0;\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(K->topLoop()->step(), 2);
  EXPECT_EQ(K->topLoop()->upper(), 15);
  EXPECT_EQ(K->topLoop()->tripCount(), 8);
}

TEST(Parser, AffineSubscripts) {
  auto K = parse("int A[64];\n"
                 "for (i = 0; i < 8; i++)\n"
                 "  for (j = 0; j < 8; j++)\n"
                 "    A[2*i + j + 1] = A[i*3 - j];\n");
  ASSERT_TRUE(K.has_value());
  std::vector<AccessInfo> Accs = collectArrayAccesses(*K);
  ASSERT_EQ(Accs.size(), 2u);
  const AffineExpr &W = Accs[0].Access->subscript(0);
  EXPECT_EQ(W.constant(), 1);
  // Two loops with coefficients 2 and 1.
  EXPECT_EQ(W.loopIds().size(), 2u);
}

TEST(Parser, CompoundAssign) {
  auto K = parse("int A[4]; int s;\n"
                 "for (i = 0; i < 4; i++) s += A[i];\n");
  ASSERT_TRUE(K.has_value());
  // s += x desugars to s = s + x.
  std::string Text = printKernel(*K);
  EXPECT_NE(Text.find("s = (s + A[i])"), std::string::npos);
}

TEST(Parser, TernaryAndBuiltins) {
  auto K = parse("int A[4]; int s;\n"
                 "for (i = 0; i < 4; i++)\n"
                 "  s = s + (A[i] > 0 ? min(A[i], 9) : max(-A[i], abs(s)));\n");
  ASSERT_TRUE(K.has_value());
  std::string Text = printKernel(*K);
  EXPECT_NE(Text.find("min("), std::string::npos);
  EXPECT_NE(Text.find("max("), std::string::npos);
  EXPECT_NE(Text.find("abs("), std::string::npos);
  EXPECT_NE(Text.find("?"), std::string::npos);
}

TEST(Parser, IfElse) {
  auto K = parse("int A[8]; int s;\n"
                 "for (i = 0; i < 8; i++) {\n"
                 "  if (A[i] > 3) { s = s + 1; } else { s = s - 1; }\n"
                 "}\n");
  ASSERT_TRUE(K.has_value());
  StmtCounts Counts = countStmts(K->body());
  EXPECT_EQ(Counts.If, 1u);
  EXPECT_EQ(Counts.Assign, 2u);
}

TEST(Parser, LogicalOperatorsNormalize) {
  auto K = parse("int A[8]; int s;\n"
                 "for (i = 0; i < 8; i++)\n"
                 "  if (A[i] > 0 && s < 5 || !s) s = s + 1;\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_TRUE(isKernelValid(*K));
}

TEST(Parser, RejectsNonAffineSubscript) {
  std::string Errors;
  auto K = parse("int A[8]; int s;\n"
                 "for (i = 0; i < 8; i++) A[i * i] = s;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("not an affine function"), std::string::npos);
}

TEST(Parser, RejectsScalarInSubscript) {
  std::string Errors;
  auto K = parse("int A[8]; int s;\n"
                 "for (i = 0; i < 8; i++) A[s] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("affine"), std::string::npos);
}

TEST(Parser, RejectsNonConstantBounds) {
  std::string Errors;
  auto K = parse("int A[8]; int n;\n"
                 "for (i = 0; i < 8; i++)\n"
                 "  for (j = 0; j < i; j++) A[j] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("constant"), std::string::npos);
}

TEST(Parser, RejectsUndeclaredIdentifier) {
  std::string Errors;
  auto K = parse("for (i = 0; i < 8; i++) B[i] = 1;\n", &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("undeclared"), std::string::npos);
}

TEST(Parser, RejectsIndexShadowing) {
  std::string Errors;
  auto K = parse("int A[8];\n"
                 "for (i = 0; i < 8; i++)\n"
                 "  for (i = 0; i < 4; i++) A[i] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("shadows"), std::string::npos);
}

TEST(Parser, RejectsRedeclaration) {
  std::string Errors;
  auto K = parse("int A[8]; int A;\n"
                 "for (i = 0; i < 8; i++) A[i] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("redeclaration"), std::string::npos);
}

TEST(Parser, RejectsRankMismatch) {
  std::string Errors;
  auto K = parse("int A[8][8];\n"
                 "for (i = 0; i < 8; i++) A[i] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("dimensions"), std::string::npos);
}

TEST(Parser, RejectsMismatchedLoopHeader) {
  std::string Errors;
  auto K = parse("int A[8];\n"
                 "for (i = 0; j < 8; i++) A[i] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("loop condition"), std::string::npos);
}

TEST(Parser, RejectsEmptyRange) {
  std::string Errors;
  auto K = parse("int A[8];\n"
                 "for (i = 8; i < 8; i++) A[i] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("empty"), std::string::npos);
}

TEST(Parser, RejectsUnknownFunction) {
  std::string Errors;
  auto K = parse("int A[8];\n"
                 "for (i = 0; i < 8; i++) A[i] = foo(i);\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("unknown function"), std::string::npos);
}

TEST(Parser, RejectsAssignmentToExpression) {
  std::string Errors;
  auto K = parse("int s;\n"
                 "for (i = 0; i < 8; i++) abs(s) = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
}

TEST(Parser, NegativeConstantsViaUnaryMinus) {
  auto K = parse("int A[8]; int s;\n"
                 "for (i = 1; i < 8; i++) s = s + A[i - 1] * -2;\n");
  ASSERT_TRUE(K.has_value());
  std::vector<AccessInfo> Accs = collectArrayAccesses(*K);
  ASSERT_EQ(Accs.size(), 1u);
  EXPECT_EQ(Accs[0].Access->subscript(0).constant(), -1);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  auto K = parse("int s; int t;\n"
                 "for (i = 0; i < 2; i++) s = 1 + 2 * 3 + t;\n");
  ASSERT_TRUE(K.has_value());
  std::string Text = printKernel(*K);
  // ((1 + (2 * 3)) + t)
  EXPECT_NE(Text.find("(2 * 3)"), std::string::npos);
}

TEST(Parser, DeclarationsMustPrecedeStatements) {
  std::string Errors;
  auto K = parse("int A[8];\n"
                 "for (i = 0; i < 8; i++) A[i] = 0;\n"
                 "int B[8];\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("precede"), std::string::npos);
}

TEST(Parser, AssignmentStyleIncrement) {
  // The paper's Figure 1 spells increments as `i++`; the common
  // `i = i + 2` form is accepted too.
  auto K = parse("int A[16];\n"
                 "for (i = 0; i < 16; i = i + 2) A[i] = 1;\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(K->topLoop()->step(), 2);
}

TEST(Parser, AssignmentStyleIncrementRejectsWrongIndex) {
  std::string Errors;
  auto K = parse("int A[16];\n"
                 "for (i = 0; i < 16; i = j + 1) A[i] = 1;\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
}

TEST(Parser, SourceKernelsRoundTripThroughThePrinter) {
  // printKernel emits valid input-language text for untransformed
  // kernels; reparsing it reproduces the same program.
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K1 = buildKernel(Spec.Name);
    std::string Printed1 = printKernel(K1);
    DiagnosticEngine Diags;
    std::optional<Kernel> K2 = parseKernel(Printed1, Spec.Name, Diags);
    ASSERT_TRUE(K2.has_value()) << Spec.Name << "\n" << Diags.toString();
    EXPECT_EQ(printKernel(*K2), Printed1) << Spec.Name;
  }
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  // One parse reports every independent mistake: the parser resyncs at
  // statement boundaries instead of stopping at the first error.
  std::string Errors;
  auto K = parse("int A[8];\n"
                 "for (i = 0; i < 8; i++) A[i * i] = 1;\n" // non-affine
                 "for (j = 0; j < 8; j++) B[j] = 1;\n"     // undeclared
                 "for (k = 0; k < 8; k++) A[k] = ;\n",     // missing expr
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("affine"), std::string::npos) << Errors;
  EXPECT_NE(Errors.find("undeclared"), std::string::npos) << Errors;
  EXPECT_NE(Errors.find("expected expression"), std::string::npos)
      << Errors;
}

TEST(Parser, RecoversInsideBracedBodies) {
  std::string Errors;
  auto K = parse("int A[8]; int s;\n"
                 "for (i = 0; i < 8; i++) {\n"
                 "  s = ;\n"     // missing expression
                 "  A[i] = s;\n" // fine; parsing must resume here
                 "  q = 1;\n"    // undeclared
                 "}\n",
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("expected expression"), std::string::npos)
      << Errors;
  EXPECT_NE(Errors.find("undeclared"), std::string::npos) << Errors;
}

TEST(Parser, RecoversAcrossDeclarations) {
  std::string Errors;
  auto K = parse("int A[0];\n" // non-positive dimension
                 "int B[8];\n"
                 "int A;\n" // fine on its own; A was never declared
                 "for (i = 0; i < 8; i++) C[i] = 1;\n", // undeclared
                 &Errors);
  EXPECT_FALSE(K.has_value());
  EXPECT_NE(Errors.find("positive"), std::string::npos) << Errors;
  EXPECT_NE(Errors.find("undeclared"), std::string::npos) << Errors;
}

TEST(Parser, ErrorCapBoundsTheDiagnosticStream) {
  std::string Src;
  for (int I = 0; I != 100; ++I)
    Src += "nope" + std::to_string(I) + " = 1;\n";
  std::string Errors;
  auto K = parse(Src, &Errors);
  EXPECT_FALSE(K.has_value());
  size_t Count = 0;
  for (size_t Pos = Errors.find("undeclared"); Pos != std::string::npos;
       Pos = Errors.find("undeclared", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 20u) << Errors;
  EXPECT_NE(Errors.find("too many errors"), std::string::npos);
}

TEST(Parser, GarbageInputNeverCrashes) {
  // Deterministic token-soup fuzzing: the parser must reject garbage
  // with diagnostics, never crash or accept.
  const char *Fragments[] = {"for", "(", ")", "{", "}", "int", "A", "[",
                             "]",   ";", "=", "+", "i", "<",   "5", "*",
                             "?",   ":", ",", "if"};
  uint64_t State = 12345;
  for (int Round = 0; Round != 200; ++Round) {
    std::string Source;
    for (int T = 0; T != 30; ++T) {
      State = State * 6364136223846793005ULL + 1442695040888963407ULL;
      Source += Fragments[(State >> 33) % std::size(Fragments)];
      Source += ' ';
    }
    DiagnosticEngine Diags;
    std::optional<Kernel> K = parseKernel(Source, "fuzz", Diags);
    if (K.has_value())
      EXPECT_TRUE(isKernelValid(*K)) << Source;
    else
      EXPECT_TRUE(Diags.hasErrors()) << Source;
  }
}
