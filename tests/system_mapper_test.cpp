//===- system_mapper_test.cpp - Multi-kernel device mapping tests ---------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/Core/SystemMapper.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

TEST(SystemMapper, AllFiveKernelsShareOneWildStar) {
  std::vector<Kernel> Owned;
  for (const KernelSpec &Spec : paperKernels())
    Owned.push_back(buildKernel(Spec.Name));
  std::vector<const Kernel *> Kernels;
  for (const Kernel &K : Owned)
    Kernels.push_back(&K);

  ExplorerOptions Opts;
  SystemMapping M = mapKernelsToDevice(Kernels, Opts);
  ASSERT_EQ(M.Kernels.size(), 5u);
  EXPECT_TRUE(M.Fits);
  EXPECT_LE(M.TotalSlices, Opts.Platform.CapacitySlices);
  for (const MappedKernel &MK : M.Kernels) {
    EXPECT_GE(MK.Result.speedup(), 1.0) << MK.Name;
    EXPECT_GT(MK.Result.SelectedEstimate.Cycles, 0u) << MK.Name;
  }
}

TEST(SystemMapper, TightDeviceForcesNegotiation) {
  std::vector<Kernel> Owned;
  Owned.push_back(buildKernel("FIR"));
  Owned.push_back(buildKernel("MM"));
  std::vector<const Kernel *> Kernels{&Owned[0], &Owned[1]};

  ExplorerOptions Full;
  SystemMapping Unconstrained = mapKernelsToDevice(Kernels, Full);

  ExplorerOptions Tight;
  Tight.Platform.CapacitySlices = 8000; // FIR+MM want ~13k together.
  SystemMapping Constrained = mapKernelsToDevice(Kernels, Tight);

  EXPECT_TRUE(Constrained.Fits);
  EXPECT_GE(Constrained.Rounds, 1u);
  EXPECT_LT(Constrained.TotalSlices, Unconstrained.TotalSlices);
  // Performance is traded for area, never correctness: cycles rise.
  EXPECT_GE(Constrained.TotalCycles, Unconstrained.TotalCycles);
}

TEST(SystemMapper, SingleKernelMatchesPlainExploration) {
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Opts;
  SystemMapping M = mapKernelsToDevice({&FIR}, Opts);
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();
  ASSERT_EQ(M.Kernels.size(), 1u);
  EXPECT_EQ(M.Kernels[0].Result.Selected, R.Selected);
  EXPECT_EQ(M.TotalCycles, R.SelectedEstimate.Cycles);
}

TEST(SystemMapper, EmptyInputIsAFittingNoop) {
  ExplorerOptions Opts;
  SystemMapping M = mapKernelsToDevice({}, Opts);
  EXPECT_TRUE(M.Fits);
  EXPECT_EQ(M.TotalSlices, 0.0);
  EXPECT_EQ(M.TotalCycles, 0u);
}
