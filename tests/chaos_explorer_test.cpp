//===- chaos_explorer_test.cpp - Fault-injected exploration tests ---------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Chaos testing for the degradation policy: the estimation backend is
/// wrapped in a FaultInjector that fails, stalls, or perturbs calls on a
/// seeded stream, and the explorer must never crash, always terminate
/// within its budgets, and either return a fitting design or flag the
/// result Degraded with a non-empty failure log. All clocks are virtual,
/// so stall and deadline behavior is deterministic and instant.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/HLS/FaultInjector.h"
#include "defacto/Kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

/// Shared virtual time for the explorer and the injector.
struct VirtualClock {
  double Now = 0;
  void install(ExplorerOptions &Opts) {
    Opts.Clock = [this] { return Now; };
    Opts.Sleep = [this](double S) { Now += S; };
  }
  void install(FaultInjector &Inj) {
    Inj.Sleep = [this](double S) { Now += S; };
  }
};

ExplorationResult exploreWithFaults(const Kernel &K,
                                    const FaultInjectorOptions &FI,
                                    VirtualClock &Clock,
                                    ExplorerOptions Opts,
                                    FaultInjector::Counters *Counters
                                    = nullptr) {
  FaultInjector Injector(FI);
  Clock.install(Injector);
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
  if (Counters)
    *Counters = Injector.counters();
  return R;
}

} // namespace

TEST(ChaosExplorer, NoFaultsMatchesThePlainExplorer) {
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Opts;
  ExplorationResult Plain = DesignSpaceExplorer(FIR, Opts).run();

  VirtualClock Clock;
  FaultInjectorOptions FI; // All rates zero.
  ExplorationResult R = exploreWithFaults(FIR, FI, Clock, Opts);
  EXPECT_FALSE(R.Degraded);
  EXPECT_TRUE(R.Failures.empty());
  EXPECT_EQ(R.Selected, Plain.Selected);
  EXPECT_EQ(R.SelectedEstimate.Cycles, Plain.SelectedEstimate.Cycles);
}

TEST(ChaosExplorer, SurvivesEveryFailureRate) {
  // The acceptance bar: at every failure rate, over every kernel and
  // several seeds, exploration terminates inside its budget and either
  // delivers a fitting design or declares degradation with a log.
  for (double Rate : {0.0, 0.1, 0.5}) {
    for (const KernelSpec &Spec : paperKernels()) {
      Kernel K = buildKernel(Spec.Name);
      for (uint64_t Seed = 0; Seed != 5; ++Seed) {
        VirtualClock Clock;
        FaultInjectorOptions FI;
        FI.Seed = Seed;
        FI.FailureRate = Rate;
        ExplorerOptions Opts;
        ExplorationResult R = exploreWithFaults(K, FI, Clock, Opts);

        EXPECT_LE(R.EvaluationsUsed, Opts.MaxEvaluations)
            << Spec.Name << " rate " << Rate << " seed " << Seed;
        if (R.SelectedFits)
          EXPECT_LE(R.SelectedEstimate.Slices,
                    Opts.Platform.CapacitySlices)
              << Spec.Name << " rate " << Rate << " seed " << Seed;
        if (!R.SelectedFits || R.Degraded)
          EXPECT_FALSE(R.Degraded && R.Failures.empty())
              << "degraded without a failure log: " << R.Trace;
        if (Rate == 0.0)
          EXPECT_FALSE(R.Degraded) << R.Trace;
      }
    }
  }
}

TEST(ChaosExplorer, PerturbedEstimatesNeverCrashTheSearch) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    VirtualClock Clock;
    FaultInjectorOptions FI;
    FI.Seed = 7;
    FI.PerturbRate = 1.0;
    FI.PerturbMagnitude = 0.5;
    ExplorerOptions Opts;
    FaultInjector::Counters Counters;
    ExplorationResult R = exploreWithFaults(K, FI, Clock, Opts, &Counters);
    EXPECT_GT(Counters.Perturbations, 0u) << Spec.Name;
    EXPECT_LE(R.EvaluationsUsed, Opts.MaxEvaluations) << Spec.Name;
    // Whatever the noise, the reported selection is self-consistent.
    if (R.SelectedFits)
      EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices)
          << Spec.Name;
  }
}

TEST(ChaosExplorer, StallsRunIntoTheDeadline) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.StallRate = 1.0;
  FI.StallSeconds = 10.0;
  ExplorerOptions Opts;
  Opts.DeadlineSeconds = 5.0;
  ExplorationResult R = exploreWithFaults(FIR, FI, Clock, Opts);

  // The first (baseline) call stalls past the whole deadline; the search
  // then stops before its first real step and falls back gracefully.
  EXPECT_TRUE(R.Degraded);
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_EQ(R.Failures.back().Error.code(), ErrorCode::DeadlineExceeded);
  EXPECT_EQ(R.Selected, UnrollVector(R.Selected.size(), 1));
  EXPECT_NE(R.Trace.find("deadline"), std::string::npos);
  // Virtual time: no real seconds were spent.
  EXPECT_GE(Clock.Now, 10.0);
}

TEST(ChaosExplorer, RetriesRideOutAlternatingFailures) {
  // An estimator that fails every other call: every evaluation succeeds
  // on its retry, so the search converges undegraded at twice the cost.
  Kernel FIR = buildKernel("FIR");
  ExplorerOptions Plain;
  ExplorationResult Healthy = DesignSpaceExplorer(FIR, Plain).run();

  unsigned Calls = 0;
  ExplorerOptions Opts;
  Opts.Estimator = [&Calls](const Kernel &K, const TargetPlatform &P)
      -> Expected<SynthesisEstimate> {
    if (++Calls % 2 == 1)
      return Status::error(ErrorCode::EstimationFailed, "transient");
    return estimateDesignChecked(K, P);
  };
  ExplorationResult R = DesignSpaceExplorer(FIR, Opts).run();
  EXPECT_FALSE(R.Degraded) << R.Trace;
  EXPECT_EQ(R.Selected, Healthy.Selected);
  EXPECT_EQ(R.EvaluationsUsed, 2 * Healthy.EvaluationsUsed);
}

TEST(ChaosExplorer, TotalEstimatorLossDegradesGracefully) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.FailureRate = 1.0;
  ExplorerOptions Opts;
  ExplorationResult R = exploreWithFaults(FIR, FI, Clock, Opts);

  EXPECT_TRUE(R.Degraded);
  EXPECT_FALSE(R.Failures.empty());
  EXPECT_FALSE(R.SelectedFits);
  EXPECT_TRUE(R.Visited.empty());
  EXPECT_NE(R.Trace.find("FAIL"), std::string::npos);
  EXPECT_NE(R.Trace.find("no design could be evaluated"),
            std::string::npos);
  // Failure entries carry machine-readable codes.
  for (const EvaluationFailure &F : R.Failures)
    EXPECT_EQ(F.Error.code(), ErrorCode::EstimationFailed);
}

TEST(ChaosExplorer, BackoffIsCappedAndUsesTheInjectedSleeper) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjectorOptions FI;
  FI.FailureRate = 1.0;
  ExplorerOptions Opts;
  Opts.MaxRetries = 3;
  Opts.RetryBackoffSeconds = 1.0;
  Opts.MaxBackoffSeconds = 2.0;
  ExplorationResult R = exploreWithFaults(FIR, FI, Clock, Opts);

  EXPECT_TRUE(R.Degraded);
  // Two vectors are attempted (baseline, then Uinit where the walk
  // stops); each sleeps 1 + 2 + 2 virtual seconds across its retries.
  EXPECT_DOUBLE_EQ(Clock.Now, 10.0);
  for (const EvaluationFailure &F : R.Failures)
    EXPECT_EQ(F.Attempts, 4u);
}

TEST(ChaosExplorer, ExhaustiveBaselineSkipsFailedCandidates) {
  Kernel FIR = buildKernel("FIR");
  VirtualClock Clock;
  FaultInjector Injector({/*Seed=*/3, /*FailureRate=*/0.3});
  Clock.install(Injector);
  ExplorerOptions Opts;
  Clock.install(Opts);
  Opts.Estimator = Injector.wrapDefault();
  Opts.MaxRetries = 0; // Make failures permanent so some are skipped.
  ExplorationResult R = exploreExhaustive(FIR, Opts);

  EXPECT_TRUE(R.Degraded);
  EXPECT_FALSE(R.Failures.empty());
  // Skipped candidates are exactly the logged failures.
  DesignSpaceExplorer Ex(FIR, Opts);
  EXPECT_EQ(R.Visited.size() + R.Failures.size(),
            Ex.space().allCandidates().size());
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
}
