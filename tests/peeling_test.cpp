//===- peeling_test.cpp - Loop peeling tests ------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/LoopPeeling.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <gtest/gtest.h>

using namespace defacto;

namespace {

/// Normalize + scalar-replace, the state peeling expects.
Kernel prepared(const char *Name, UnrollVector U = {}) {
  Kernel K = buildKernel(Name);
  normalizeLoops(K);
  if (!U.empty()) {
    EXPECT_TRUE(unrollAndJam(K, U));
    normalizeLoops(K);
  }
  scalarReplace(K);
  return K;
}

bool containsGuardText(const Kernel &K) {
  std::string Text = printKernel(K);
  return Text.find("== 0)") != std::string::npos &&
         Text.find("if (") != std::string::npos;
}

} // namespace

TEST(Peeling, RemovesFirGuards) {
  Kernel FIR = prepared("FIR");
  ASSERT_TRUE(containsGuardText(FIR));
  PeelingStats Stats = peelGuardedIterations(FIR);
  EXPECT_GE(Stats.LoopsPeeled, 1u);
  EXPECT_TRUE(isKernelValid(FIR));
  // No first-iteration guards remain anywhere.
  bool GuardLeft = false;
  walkStmts(FIR.body(), [&GuardLeft](const Stmt *S) {
    GuardLeft |= isa<IfStmt>(S);
  });
  EXPECT_FALSE(GuardLeft);
}

TEST(Peeling, PeeledLoopRangeShrinks) {
  Kernel FIR = prepared("FIR");
  int64_t TripBefore = perfectNest(FIR.topLoop()).front()->tripCount();
  peelGuardedIterations(FIR);
  // The main j loop lost its first iteration; the peeled copy sits
  // before it at the top level.
  ASSERT_GT(FIR.body().size(), 1u);
  ForStmt *MainLoop = nullptr;
  for (const StmtPtr &S : FIR.body())
    if (auto *F = dyn_cast<ForStmt>(const_cast<Stmt *>(S.get())))
      MainLoop = F;
  ASSERT_NE(MainLoop, nullptr);
  EXPECT_EQ(MainLoop->tripCount(), TripBefore - 1);
}

TEST(Peeling, PreservesSemanticsOnAllKernels) {
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel Original = buildKernel(Spec.Name);
    auto Reference = simulate(Original, 31);
    Kernel K = prepared(Spec.Name.c_str(), {2, 2});
    peelGuardedIterations(K);
    EXPECT_TRUE(isKernelValid(K)) << Spec.Name;
    EXPECT_EQ(simulate(K, 31), Reference) << Spec.Name;
  }
}

TEST(Peeling, ClonedLoopsGetFreshIds) {
  Kernel MM = prepared("MM");
  peelGuardedIterations(MM);
  // Verifier enforces unique loop ids; also count loops to confirm
  // cloning happened.
  EXPECT_TRUE(isKernelValid(MM));
  EXPECT_GT(collectLoops(MM.body()).size(), 3u);
}

TEST(Peeling, NoGuardsNoChange) {
  Kernel K = buildKernel("FIR"); // No scalar replacement: no guards.
  normalizeLoops(K);
  std::string Before = printKernel(K);
  PeelingStats Stats = peelGuardedIterations(K);
  EXPECT_EQ(Stats.LoopsPeeled, 0u);
  EXPECT_EQ(printKernel(K), Before);
}

TEST(Peeling, SingleIterationLoopFullyPeels) {
  Kernel K("one");
  ArrayDecl *A = K.makeArray("A", ScalarType::Int32, {4});
  ScalarDecl *R = K.makeScalar("r", ScalarType::Int32, true);
  int Id = K.allocateLoopId();
  auto Loop = std::make_unique<ForStmt>(Id, "i", 0, 1, 1);
  auto Guard = std::make_unique<IfStmt>(std::make_unique<BinaryExpr>(
      BinaryOp::CmpEq, std::make_unique<LoopIndexExpr>(Id),
      std::make_unique<IntLitExpr>(0)));
  Guard->thenBody().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ScalarRefExpr>(R),
      std::make_unique<ArrayAccessExpr>(
          A, std::vector<AffineExpr>{AffineExpr(0)})));
  Loop->body().push_back(std::move(Guard));
  K.body().push_back(std::move(Loop));

  PeelingStats Stats = peelGuardedIterations(K);
  EXPECT_EQ(Stats.LoopsPeeled, 1u);
  // The loop disappears entirely; the load remains unguarded.
  EXPECT_EQ(collectLoops(K.body()).size(), 0u);
  EXPECT_EQ(countStmts(K.body()).Assign, 1u);
  EXPECT_EQ(countStmts(K.body()).If, 0u);
}
