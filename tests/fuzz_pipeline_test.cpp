//===- fuzz_pipeline_test.cpp - Randomized pipeline equivalence -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Property fuzzing: generate random affine loop-nest kernels within the
/// paper's input domain (random nests, random affine accesses, random
/// expression shapes, occasional conditionals) and check that the full
/// transformation pipeline preserves semantics for several unroll
/// vectors, that the verifier stays green, and that estimation never
/// crashes or returns degenerate values.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/IR/IRVerifier.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Random.h"
#include "defacto/Transforms/Pipeline.h"
#include "defacto/VHDL/VhdlEmitter.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace defacto;

namespace {

/// Generates a random kernel in the affine domain:
///  - a perfect nest of 1-3 loops with trip counts in {4, 6, 8, 12, 16},
///  - 2-4 arrays (rank 1-2), one designated output,
///  - 1-3 statements accumulating affine-indexed reads into the output,
///  - subscripts a*loop + b with a in {1, 2} and small offsets,
///  - dimensions sized from the maximum subscript value, so every
///    access is in bounds by construction.
class KernelFuzzer {
public:
  explicit KernelFuzzer(uint64_t Seed) : Rng(Seed) {}

  Kernel generate() {
    Kernel K("fuzz");
    unsigned Depth = 1 + Rng.nextBelow(3);
    static const int64_t TripChoices[] = {4, 6, 8, 12, 16};
    std::vector<int> LoopIds;
    std::vector<int64_t> Trips;
    for (unsigned D = 0; D != Depth; ++D) {
      LoopIds.push_back(K.allocateLoopId());
      Trips.push_back(TripChoices[Rng.nextBelow(5)]);
    }

    // Random affine subscript over a subset of the loops.
    auto randomSubscript = [&](int64_t &MaxValue) {
      AffineExpr Sub;
      MaxValue = 0;
      for (unsigned D = 0; D != Depth; ++D) {
        if (Rng.nextBelow(2) == 0 && Sub.numTerms() != 0)
          continue;
        int64_t Coeff = 1 + Rng.nextBelow(2);
        Sub = Sub.add(AffineExpr::term(LoopIds[D], Coeff));
        MaxValue += Coeff * (Trips[D] - 1);
      }
      int64_t Offset = Rng.nextBelow(4);
      Sub = Sub.addConstant(Offset);
      MaxValue += Offset;
      return Sub;
    };

    // Input arrays with one or two dimensions.
    unsigned NumInputs = 1 + Rng.nextBelow(3);
    struct Input {
      ArrayDecl *Array;
      std::vector<AffineExpr> Subs;
    };
    std::vector<Input> Inputs;
    static const ScalarType Types[] = {ScalarType::Int8, ScalarType::Int16,
                                       ScalarType::Int32};
    for (unsigned I = 0; I != NumInputs; ++I) {
      unsigned Rank = 1 + Rng.nextBelow(2);
      std::vector<AffineExpr> Subs;
      std::vector<int64_t> Dims;
      for (unsigned D = 0; D != Rank; ++D) {
        int64_t MaxValue = 0;
        Subs.push_back(randomSubscript(MaxValue));
        Dims.push_back(MaxValue + 1);
      }
      ArrayDecl *A = K.makeArray("in" + std::to_string(I),
                                 Types[Rng.nextBelow(3)], Dims);
      Inputs.push_back({A, std::move(Subs)});
    }

    // Output array indexed by the outermost loop only (uniformly
    // generated writes, like the paper's kernels).
    ArrayDecl *Out = K.makeArray("out", ScalarType::Int32,
                                 {Trips[0] + 4});
    std::vector<AffineExpr> OutSubs{AffineExpr::term(LoopIds[0], 1)};

    // Build the nest.
    std::vector<ForStmt *> Nest;
    for (unsigned D = 0; D != Depth; ++D) {
      auto Loop = std::make_unique<ForStmt>(
          LoopIds[D], "i" + std::to_string(D), 0, Trips[D], 1);
      ForStmt *Raw = Loop.get();
      if (D == 0)
        K.body().push_back(std::move(Loop));
      else
        Nest.back()->body().push_back(std::move(Loop));
      Nest.push_back(Raw);
    }

    // Random accumulation statements.
    unsigned NumStmts = 1 + Rng.nextBelow(3);
    for (unsigned S = 0; S != NumStmts; ++S) {
      const Input &In = Inputs[Rng.nextBelow(Inputs.size())];
      ExprPtr Value = std::make_unique<ArrayAccessExpr>(In.Array, In.Subs);
      switch (Rng.nextBelow(4)) {
      case 0: {
        const Input &Rhs = Inputs[Rng.nextBelow(Inputs.size())];
        Value = std::make_unique<BinaryExpr>(
            BinaryOp::Mul, std::move(Value),
            std::make_unique<ArrayAccessExpr>(Rhs.Array, Rhs.Subs));
        break;
      }
      case 1:
        Value = std::make_unique<UnaryExpr>(UnaryOp::Abs,
                                            std::move(Value));
        break;
      case 2:
        Value = std::make_unique<BinaryExpr>(
            BinaryOp::Max, std::move(Value),
            std::make_unique<IntLitExpr>(
                Rng.nextInRange(-8, 8)));
        break;
      default:
        break;
      }
      Value = std::make_unique<BinaryExpr>(
          BinaryOp::Add,
          std::make_unique<ArrayAccessExpr>(Out, OutSubs),
          std::move(Value));
      Nest.back()->body().push_back(std::make_unique<AssignStmt>(
          std::make_unique<ArrayAccessExpr>(Out, OutSubs),
          std::move(Value)));
    }

    // Occasionally wrap the last statement in a data-dependent guard.
    if (Rng.nextBelow(4) == 0 && !Inputs.empty()) {
      StmtList &Body = Nest.back()->body();
      StmtPtr Last = std::move(Body.back());
      Body.pop_back();
      const Input &In = Inputs.front();
      auto Guard = std::make_unique<IfStmt>(std::make_unique<BinaryExpr>(
          BinaryOp::CmpGt,
          std::make_unique<ArrayAccessExpr>(In.Array, In.Subs),
          std::make_unique<IntLitExpr>(0)));
      Guard->thenBody().push_back(std::move(Last));
      Body.push_back(std::move(Guard));
    }
    return K;
  }

  /// A random valid unroll vector for the kernel's nest.
  UnrollVector randomUnroll(Kernel &K) {
    UnrollVector U;
    for (ForStmt *F : perfectNest(K.topLoop())) {
      std::vector<int64_t> Divs = divisorsOf(F->tripCount());
      U.push_back(Divs[Rng.nextBelow(Divs.size())]);
    }
    return U;
  }

private:
  SplitMix64 Rng;
};

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

/// Seed count, raisable for deeper runs (the sanitizer CI preset sets
/// DEFACTO_FUZZ_SEEDS=96).
uint64_t fuzzSeedCount() {
  if (const char *Env = std::getenv("DEFACTO_FUZZ_SEEDS"))
    if (long N = std::atol(Env); N > 0)
      return static_cast<uint64_t>(N);
  return 24;
}

} // namespace

TEST_P(PipelineFuzz, RandomKernelsSurviveTheFullPipeline) {
  KernelFuzzer Fuzzer(GetParam());
  Kernel K = Fuzzer.generate();
  ASSERT_TRUE(isKernelValid(K)) << printKernel(K);
  auto Reference = simulate(K, GetParam());

  for (int Trial = 0; Trial != 3; ++Trial) {
    TransformOptions Opts;
    Opts.Unroll = Fuzzer.randomUnroll(K);
    TransformResult R = applyPipeline(K, Opts);
    ASSERT_TRUE(isKernelValid(R.K))
        << printKernel(K) << "\nunroll "
        << unrollVectorToString(Opts.Unroll);
    EXPECT_EQ(simulate(R.K, GetParam()), Reference)
        << printKernel(K) << "\nunroll "
        << unrollVectorToString(Opts.Unroll);

    SynthesisEstimate Est =
        estimateDesign(R.K, TargetPlatform::wildstarPipelined());
    EXPECT_GT(Est.Cycles, 0u);
    EXPECT_GT(Est.Slices, 0.0);

    // The back end must emit well-formed VHDL for anything the pipeline
    // produces.
    EXPECT_EQ(checkVhdlStructure(emitVhdl(R.K)), "");
  }
}

TEST_P(PipelineFuzz, RandomKernelsExplore) {
  KernelFuzzer Fuzzer(GetParam() ^ 0x9E3779B97F4A7C15ULL);
  Kernel K = Fuzzer.generate();
  ExplorerOptions Opts;
  ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
  EXPECT_LE(R.SelectedEstimate.Cycles, R.BaselineEstimate.Cycles);
  EXPECT_LE(R.SelectedEstimate.Slices, Opts.Platform.CapacitySlices);
  // The selected design must still compute the right answer.
  TransformOptions TO;
  TO.Unroll = R.Selected;
  TransformResult Design = applyPipeline(K, TO);
  EXPECT_EQ(simulate(Design.K, 3), simulate(K, 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(0, fuzzSeedCount()));
