//===- table3_search_coverage.cpp - The 0.3% search coverage claim --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's §6.3 search statistics: the number of designs
/// the balance-guided algorithm synthesizes versus the full design space
/// of all possible unroll factors ("we search on average only 0.3% of
/// the design space"), plus the quality of the selected design against
/// the exhaustive-search winner (criteria 2 and 3 of §3: performance
/// close to the fastest design; smallest among comparable designs).
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main() {
  std::printf("==== Search coverage and selection quality (pipelined) "
              "====\n\n");
  Table T({"Program", "Evals", "Space", "Searched", "Sel cycles",
           "Best cycles", "Gap", "Sel slices", "Best slices"});
  double TotalFraction = 0;
  unsigned N = 0;
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions Opts;
    ExplorationResult Dse = DesignSpaceExplorer(K, Opts).run();
    ExplorationResult Exh = exploreExhaustive(K, Opts);
    double Gap = static_cast<double>(Dse.SelectedEstimate.Cycles) /
                 static_cast<double>(Exh.SelectedEstimate.Cycles);
    T.addRow({Spec.Name, std::to_string(Dse.Visited.size()),
              std::to_string(Dse.FullSpaceSize),
              formatDouble(100.0 * Dse.fractionSearched(), 2) + "%",
              std::to_string(Dse.SelectedEstimate.Cycles),
              std::to_string(Exh.SelectedEstimate.Cycles),
              formatDouble(Gap, 2) + "x",
              formatDouble(Dse.SelectedEstimate.Slices, 0),
              formatDouble(Exh.SelectedEstimate.Slices, 0)});
    TotalFraction += Dse.fractionSearched();
    ++N;
  }
  std::printf("%s\n", T.toString(2).c_str());
  std::printf("average searched fraction: %.2f%% (paper: 0.3%%)\n",
              100.0 * TotalFraction / N);
  return 0;
}
