//===- perf_eval_fastpath.cpp - Fast-path evaluation benchmarks -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the evaluation fast path (--fast-path=on: arena-allocated IR
/// clones, transform-stage memoization, memoized estimation — see
/// docs/PERFORMANCE.md) against the historical per-candidate path on the
/// paper's Figure 6 matrix-multiply kernel, exhaustive strategy, default
/// unroll caps. Three configurations per thread count:
///
///   off        every candidate runs the full transform pipeline and the
///              reference estimator (the bit-for-bit historical path);
///   on-cold    fast path with an empty TransformStageCache, so the
///              sweep pays every stage and candidate build once;
///   on         fast path against a warm shared TransformStageCache, the
///              steady state of batch runs that revisit a kernel
///              (multiple platforms, --repeat, portfolio strategies) —
///              candidates are served from the cache's finished-kernel
///              level and evaluation cost is the estimator itself.
///
/// Every sweep uses a fresh EstimateCache, so each of the 90 candidates
/// is genuinely evaluated every time: the numbers are evaluations per
/// second of the engine, never cache replay of estimates.
///
/// The run is also a parity gate: winners, estimates, and the decision
/// digest must be identical off vs on (1 and 8 threads), and a
/// FastPathMode::Verify sweep must report zero parity violations. The
/// process exits nonzero only when parity fails — never on a slow
/// machine — so CI can run it as a smoke test (--quick caps the
/// repetitions).
///
/// Writes BENCH_eval.json (override with --json=PATH): per-sweep
/// evaluations/sec, the off-vs-on speedups, the parity verdicts, and the
/// per-phase timer split (pipeline.clone/unroll/scalarrepl/...,
/// estimator.dfg, scheduler.schedule) for the off and on paths.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "defacto/Core/Explorer.h"
#include "defacto/Core/TransformStageCache.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Histogram.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace defacto;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepOutcome {
  double Seconds = 0;
  unsigned Evaluations = 0;
  UnrollVector Selected;
  SynthesisEstimate Estimate;
  std::vector<std::string> Digest;
};

/// One exhaustive sweep with a fresh estimate cache. \p Stages empty:
/// the mode's default (fresh cache when the fast path is enabled).
SweepOutcome runSweep(const Kernel &K, FastPathMode Mode, unsigned Threads,
                      std::shared_ptr<ThreadPool> Pool,
                      std::shared_ptr<TransformStageCache> Stages,
                      bool WantDigest = false) {
  ExplorerOptions Opts;
  Opts.NumThreads = Threads;
  if (Threads > 1)
    Opts.Pool = Pool;
  Opts.Cache = std::make_shared<EstimateCache>();
  Opts.FastPath = Mode;
  Opts.StageCache = std::move(Stages);

  TraceRecorder &R = TraceRecorder::global();
  if (WantDigest) {
    R.clear();
    R.setEnabled(true);
  }
  double T0 = now();
  ExplorationResult Res = exploreExhaustive(K, Opts);
  SweepOutcome Out;
  Out.Seconds = now() - T0;
  Out.Evaluations = Res.EvaluationsUsed;
  Out.Selected = Res.Selected;
  Out.Estimate = Res.SelectedEstimate;
  if (WantDigest) {
    Out.Digest = R.decisionDigest();
    R.setEnabled(false);
    R.clear();
  }
  return Out;
}

bool sameEstimate(const SynthesisEstimate &A, const SynthesisEstimate &B) {
  return A.Cycles == B.Cycles && A.Slices == B.Slices &&
         A.Registers == B.Registers && A.Balance == B.Balance;
}

struct SweepRow {
  std::string Mode;
  unsigned Threads = 0;
  unsigned Repetitions = 0;
  double BestSeconds = 0;
  unsigned Evaluations = 0;

  double evalsPerSec() const {
    return BestSeconds > 0 ? Evaluations / BestSeconds : 0;
  }
};

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bench::ObservabilityFlags Obs = bench::parseObservabilityFlags(argc, argv);
  // The timed sweeps run with recording off; the instrumented phase-split
  // passes below enable it explicitly.
  StatRegistry::instance().setEnabled(false);
  TraceRecorder::global().setEnabled(false);

  std::string JsonPath = "BENCH_eval.json";
  bool Quick = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0) {
      JsonPath = argv[I] + 7;
    } else if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_eval_fastpath [--quick] [--json=PATH] "
                   "[--stats] [--trace-out=PATH]\n");
      return 2;
    }
  }

  const Kernel K = buildKernel("MM");
  const unsigned Reps = Quick ? 2 : 5;
  const std::vector<unsigned> ThreadCounts = {1, 4, 8};
  auto Pool = std::make_shared<ThreadPool>(8);

  //===------------------------------------------------------------===//
  // Timed sweeps.
  //===------------------------------------------------------------===//
  std::vector<SweepRow> Rows;
  for (unsigned T : ThreadCounts) {
    {
      SweepRow Row{"off", T, Reps};
      for (unsigned I = 0; I != Reps; ++I) {
        SweepOutcome O = runSweep(K, FastPathMode::Off, T, Pool, nullptr);
        if (I == 0 || O.Seconds < Row.BestSeconds)
          Row.BestSeconds = O.Seconds;
        Row.Evaluations = O.Evaluations;
      }
      Rows.push_back(Row);
    }
    {
      // Cold: a fresh stage cache per repetition.
      SweepRow Row{"on-cold", T, Reps};
      for (unsigned I = 0; I != Reps; ++I) {
        SweepOutcome O = runSweep(K, FastPathMode::On, T, Pool,
                                  std::make_shared<TransformStageCache>());
        if (I == 0 || O.Seconds < Row.BestSeconds)
          Row.BestSeconds = O.Seconds;
        Row.Evaluations = O.Evaluations;
      }
      Rows.push_back(Row);
    }
    {
      // Steady state: one shared stage cache, warmed by a discarded
      // first sweep (batch-run usage, where jobs revisit a kernel).
      SweepRow Row{"on", T, Reps};
      auto Stages = std::make_shared<TransformStageCache>();
      runSweep(K, FastPathMode::On, T, Pool, Stages); // warm-up
      for (unsigned I = 0; I != Reps; ++I) {
        SweepOutcome O = runSweep(K, FastPathMode::On, T, Pool, Stages);
        if (I == 0 || O.Seconds < Row.BestSeconds)
          Row.BestSeconds = O.Seconds;
        Row.Evaluations = O.Evaluations;
      }
      Rows.push_back(Row);
    }
  }

  auto rowFor = [&Rows](const std::string &Mode,
                        unsigned T) -> const SweepRow & {
    for (const SweepRow &R : Rows)
      if (R.Mode == Mode && R.Threads == T)
        return R;
    static SweepRow Empty;
    return Empty;
  };

  //===------------------------------------------------------------===//
  // Parity gate.
  //===------------------------------------------------------------===//
  bool ParityOk = true;
  auto check = [&ParityOk](bool Cond, const char *What) {
    if (!Cond) {
      std::fprintf(stderr, "PARITY VIOLATION: %s\n", What);
      ParityOk = false;
    }
    return Cond;
  };

  bool DigestMatch1 = false, DigestMatch8 = false, WinnerMatch = false,
       SteadyMatch = false;
  {
    SweepOutcome Off1 =
        runSweep(K, FastPathMode::Off, 1, Pool, nullptr, /*WantDigest=*/true);
    SweepOutcome On1 =
        runSweep(K, FastPathMode::On, 1, Pool,
                 std::make_shared<TransformStageCache>(), /*WantDigest=*/true);
    DigestMatch1 = Off1.Digest == On1.Digest;
    WinnerMatch = Off1.Selected == On1.Selected &&
                  sameEstimate(Off1.Estimate, On1.Estimate);
    check(DigestMatch1, "decision digest differs off vs on (1 thread)");
    check(WinnerMatch, "selected design differs off vs on (1 thread)");

    // Steady state must stay bit-identical too: candidates served from
    // the finished-kernel cache level must reproduce the off digest.
    auto Stages = std::make_shared<TransformStageCache>();
    runSweep(K, FastPathMode::On, 1, Pool, Stages);
    SweepOutcome Warm =
        runSweep(K, FastPathMode::On, 1, Pool, Stages, /*WantDigest=*/true);
    SteadyMatch = Off1.Digest == Warm.Digest &&
                  Off1.Selected == Warm.Selected &&
                  sameEstimate(Off1.Estimate, Warm.Estimate);
    check(SteadyMatch, "warm-cache sweep diverged from the off path");

    SweepOutcome Off8 =
        runSweep(K, FastPathMode::Off, 8, Pool, nullptr, /*WantDigest=*/true);
    SweepOutcome On8 =
        runSweep(K, FastPathMode::On, 8, Pool,
                 std::make_shared<TransformStageCache>(), /*WantDigest=*/true);
    DigestMatch8 = Off8.Digest == On8.Digest && Off1.Digest == Off8.Digest;
    check(DigestMatch8, "decision digest differs off vs on (8 threads)");
  }

  // Verify mode re-runs every candidate on both paths and counts
  // estimate mismatches in fastpath.parity_violations.
  uint64_t VerifyViolations = 0;
  {
    StatRegistry::instance().setEnabled(true);
    auto countViolations = [] {
      uint64_t N = 0;
      for (const StatSnapshot &S : StatRegistry::instance().snapshot())
        if (S.Group == "fastpath" && S.Name == "parity_violations")
          N = S.Value;
      return N;
    };
    uint64_t Before = countViolations();
    runSweep(K, FastPathMode::Verify, 1, Pool, nullptr);
    runSweep(K, FastPathMode::Verify, 8, Pool, nullptr);
    VerifyViolations = countViolations() - Before;
    StatRegistry::instance().setEnabled(false);
    check(VerifyViolations == 0,
          "FastPathMode::Verify found estimate mismatches");
  }

  //===------------------------------------------------------------===//
  // Instrumented phase-split passes (off, then cold on), outside the
  // timed measurements. The same passes feed the per-evaluation latency
  // percentiles from the eval.latency_us histogram.
  //===------------------------------------------------------------===//
  struct LatencyPercentiles {
    uint64_t Count = 0, P50 = 0, P95 = 0, P99 = 0, Max = 0;
  };
  auto evalLatency = [] {
    LatencyPercentiles P;
    for (const HistogramSnapshot &S : HistogramRegistry::global().snapshot())
      if (S.Name == "eval.latency_us") {
        P.Count = S.Count;
        P.P50 = S.quantile(0.50);
        P.P95 = S.quantile(0.95);
        P.P99 = S.quantile(0.99);
        P.Max = S.Max;
      }
    return P;
  };
  std::string PhasesOff, PhasesOn;
  LatencyPercentiles LatOff, LatOn;
  {
    StatRegistry::instance().setEnabled(true);
    TimerGroup::global().reset();
    HistogramRegistry::global().reset();
    runSweep(K, FastPathMode::Off, 1, Pool, nullptr);
    PhasesOff = TimerGroup::global().toJson();
    LatOff = evalLatency();
    TimerGroup::global().reset();
    HistogramRegistry::global().reset();
    runSweep(K, FastPathMode::On, 1, Pool,
             std::make_shared<TransformStageCache>());
    PhasesOn = TimerGroup::global().toJson();
    LatOn = evalLatency();
    TimerGroup::global().reset();
    HistogramRegistry::global().reset();
    StatRegistry::instance().setEnabled(false);
  }

  //===------------------------------------------------------------===//
  // Report.
  //===------------------------------------------------------------===//
  double OffEps = rowFor("off", 1).evalsPerSec();
  double ColdEps = rowFor("on-cold", 1).evalsPerSec();
  double SteadyEps = rowFor("on", 1).evalsPerSec();
  double SpeedupCold = OffEps > 0 ? ColdEps / OffEps : 0;
  double SpeedupSteady = OffEps > 0 ? SteadyEps / OffEps : 0;

  std::printf("%-8s %8s %6s %14s %14s\n", "mode", "threads", "reps",
              "best_wall_ms", "evals/sec");
  for (const SweepRow &R : Rows)
    std::printf("%-8s %8u %6u %14.2f %14.1f\n", R.Mode.c_str(), R.Threads,
                R.Repetitions, R.BestSeconds * 1e3, R.evalsPerSec());
  std::printf("single-thread speedup vs off: %.2fx cold, %.2fx steady\n",
              SpeedupCold, SpeedupSteady);
  std::printf("parity: %s (verify violations: %llu)\n",
              ParityOk ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(VerifyViolations));
  auto printLatency = [](const char *Mode, const LatencyPercentiles &L) {
    std::printf("eval latency %-4s p50 %llu us, p95 %llu us, p99 %llu us, "
                "max %llu us (%llu evaluations)\n",
                Mode, static_cast<unsigned long long>(L.P50),
                static_cast<unsigned long long>(L.P95),
                static_cast<unsigned long long>(L.P99),
                static_cast<unsigned long long>(L.Max),
                static_cast<unsigned long long>(L.Count));
  };
  printLatency("off:", LatOff);
  printLatency("on:", LatOn);

  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"kernel\": \"MM\",\n  \"strategy\": \"exhaustive\",\n"
     << "  \"platform\": \"wildstar-pipelined\",\n"
     << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
  OS << "  \"sweeps\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const SweepRow &R = Rows[I];
    OS << "    {\"mode\": \"" << jsonEscape(R.Mode)
       << "\", \"threads\": " << R.Threads
       << ", \"repetitions\": " << R.Repetitions
       << ", \"best_wall_seconds\": " << R.BestSeconds
       << ", \"evaluations\": " << R.Evaluations
       << ", \"evals_per_sec\": " << R.evalsPerSec() << "}"
       << (I + 1 == Rows.size() ? "\n" : ",\n");
  }
  OS << "  ],\n";
  OS << "  \"fastpath\": {\"threads\": 1, \"off_evals_per_sec\": " << OffEps
     << ", \"on_cold_evals_per_sec\": " << ColdEps
     << ", \"on_steady_evals_per_sec\": " << SteadyEps
     << ", \"speedup_cold\": " << SpeedupCold
     << ", \"speedup_steady\": " << SpeedupSteady << "},\n";
  OS << "  \"parity\": {\"digest_match_1thread\": "
     << (DigestMatch1 ? "true" : "false")
     << ", \"digest_match_8threads\": " << (DigestMatch8 ? "true" : "false")
     << ", \"winner_match\": " << (WinnerMatch ? "true" : "false")
     << ", \"steady_state_match\": " << (SteadyMatch ? "true" : "false")
     << ", \"verify_violations\": " << VerifyViolations << "},\n";
  auto latencyJson = [](const LatencyPercentiles &L) {
    std::ostringstream LS;
    LS << "{\"count\": " << L.Count << ", \"p50_us\": " << L.P50
       << ", \"p95_us\": " << L.P95 << ", \"p99_us\": " << L.P99
       << ", \"max_us\": " << L.Max << "}";
    return LS.str();
  };
  OS << "  \"latency_percentiles\": {\"histogram\": \"eval.latency_us\", "
     << "\"threads\": 1, \"off\": " << latencyJson(LatOff)
     << ", \"on\": " << latencyJson(LatOn) << "},\n";
  OS << "  \"phase_timings_ms\": {\"off\": " << PhasesOff
     << ", \"on\": " << PhasesOn << "}\n";
  OS << "}\n";
  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << OS.str();
  }

  if (!bench::finishObservability(Obs))
    return 1;
  return ParityOk ? 0 : 1;
}
