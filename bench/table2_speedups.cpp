//===- table2_speedups.cpp - Table 2 reproduction -------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 2 of the paper: speedup of the DSE-selected design
/// over the baseline (no unrolling, all other transformations applied)
/// for each kernel, with non-pipelined and pipelined memory accesses.
/// The paper's measured values are printed alongside for shape
/// comparison; absolute agreement is not expected (the estimator stands
/// in for Monet), but the ordering — pipelined FIR/MM/PAT far ahead,
/// JAC/SOBEL modest — should hold.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>
#include <map>

using namespace defacto;

int main() {
  // Table 2 of the paper, rows in kernel order.
  const std::map<std::string, std::pair<double, double>> Paper = {
      {"FIR", {7.67, 17.26}}, {"MM", {4.55, 13.36}},
      {"JAC", {3.87, 5.56}},  {"PAT", {7.53, 34.61}},
      {"SOBEL", {4.01, 3.90}}};

  std::printf("==== Table 2: Speedup on a single FPGA ====\n");
  std::printf("baseline: unroll (1,...,1) with all other transformations "
              "applied (as in the paper)\n\n");

  Table T({"Program", "Non-Pipelined", "(paper)", "Pipelined", "(paper)",
           "Selected NP", "Selected P"});
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);

    ExplorerOptions NP;
    NP.Platform = TargetPlatform::wildstarNonPipelined();
    ExplorationResult RNp = DesignSpaceExplorer(K, NP).run();

    ExplorerOptions P;
    P.Platform = TargetPlatform::wildstarPipelined();
    ExplorationResult RP = DesignSpaceExplorer(K, P).run();

    auto PaperRow = Paper.at(Spec.Name);
    T.addRow({Spec.Name, formatDouble(RNp.speedup(), 2),
              formatDouble(PaperRow.first, 2),
              formatDouble(RP.speedup(), 2),
              formatDouble(PaperRow.second, 2),
              unrollVectorToString(RNp.Selected),
              unrollVectorToString(RP.Selected)});
  }
  std::printf("%s\n", T.toString(2).c_str());
  std::printf("Shape checks: pipelined >> non-pipelined for FIR/MM/PAT; "
              "JAC and SOBEL stay modest on both platforms.\n");
  return 0;
}
