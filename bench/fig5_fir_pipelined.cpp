//===- fig5_fir_pipelined.cpp - Figure 5 reproduction --------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 5 of the paper: balance, execution cycles, and design
/// area for FIR with pipelined memory accesses, as a function of the
/// inner and outer unroll factors. Pass --csv for machine-readable
/// output, --pipeline=p1,p2,... to override the transformation pass
/// pipeline, and --fast-path=on|verify to exercise the fast evaluation
/// engine (docs/PERFORMANCE.md); the panels are bit-identical either way.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

int main(int argc, char **argv) {
  return defacto::bench::runFigureSweep(
      "Figure 5", "FIR",
      defacto::TargetPlatform::wildstarPipelined(),
      defacto::bench::parseCsvFlag(argc, argv),
      defacto::bench::parseFastPathFlag(argc, argv),
      defacto::bench::parsePipelineFlag(argc, argv));
}
