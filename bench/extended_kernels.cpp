//===- extended_kernels.cpp - DSE over the extended kernel set ------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Generalization check beyond the paper's evaluation: the exploration
/// algorithm applied to the other computations §2.4 names as the target
/// class — image correlation (a 4-deep nest) and morphological
/// dilation/erosion — on both memory systems.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main() {
  std::printf("==== Extended kernel set (generalization beyond the "
              "paper's five) ====\n\n");
  Table T({"Program", "Platform", "Selected", "Cycles", "Slices",
           "Balance", "Speedup", "Searched"});
  for (const KernelSpec &Spec : extendedKernels()) {
    Kernel K = buildKernel(Spec.Name);
    for (bool Pipelined : {false, true}) {
      ExplorerOptions Opts;
      Opts.Platform = Pipelined ? TargetPlatform::wildstarPipelined()
                                : TargetPlatform::wildstarNonPipelined();
      ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
      T.addRow({Spec.Name, Pipelined ? "pipelined" : "non-pipelined",
                unrollVectorToString(R.Selected),
                std::to_string(R.SelectedEstimate.Cycles),
                formatDouble(R.SelectedEstimate.Slices, 0),
                formatDouble(R.SelectedEstimate.Balance, 3),
                formatDouble(R.speedup(), 2) + "x",
                formatDouble(100.0 * R.fractionSearched(), 2) + "%"});
    }
  }
  std::printf("%s\n", T.toString(2).c_str());
  return 0;
}
