//===- table4_estimate_accuracy.cpp - §6.4 estimate validation ------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's §6.4 study: behavioral-synthesis estimates
/// versus implemented (logic synthesis + place-and-route) designs. The
/// paper implemented the baseline, the selected designs, and a few
/// unroll factors beyond the selection, finding cycle counts unchanged,
/// clock degradation under 10% for most selected designs (30% for
/// pipelined FIR, still meeting the 40 ns target), sublinear area growth
/// for selected designs, and significant degradation only for very large
/// designs whose estimated performance exceeds what implementation
/// delivers.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/HLS/PlaceRoute.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main() {
  std::printf("==== Estimate vs implementation (pipelined) ====\n\n");
  Table T({"Program", "Design", "Unroll", "Cycles est", "Cycles impl",
           "Clock est", "Clock impl", "Area est", "Area impl",
           "Meets 40ns"});

  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions Opts;
    DesignSpaceExplorer Ex(K, Opts);
    ExplorationResult Dse = Ex.run();

    struct Row {
      const char *Label;
      UnrollVector U;
    };
    // Baseline, selected, and one design beyond the selection (double
    // the selected product where the space allows).
    std::vector<Row> Rows;
    Rows.push_back({"baseline", Ex.space().base()});
    Rows.push_back({"selected", Dse.Selected});
    UnrollVector Beyond = Ex.space().increase(
        Dse.Selected, {0, 1, 2});
    if (Beyond != Dse.Selected)
      Rows.push_back({"beyond", Beyond});

    for (const Row &R : Rows) {
      auto Est = Ex.evaluate(R.U);
      if (!Est)
        continue;
      ImplementationResult Impl = placeAndRoute(*Est, Opts.Platform);
      T.addRow({Spec.Name, R.Label, unrollVectorToString(R.U),
                std::to_string(Est->Cycles), std::to_string(Impl.Cycles),
                formatDouble(Opts.Platform.ClockPeriodNs, 0) + "ns",
                formatDouble(Impl.AchievedClockNs, 1) + "ns",
                formatDouble(Est->Slices, 0),
                formatDouble(Impl.Slices, 0),
                Impl.MeetsTargetClock ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", T.toString(2).c_str());
  std::printf("Shape checks: cycle counts identical through "
              "implementation; selected designs meet the 40 ns target; "
              "area grows modestly for selected designs and faster for "
              "larger ones.\n");
  return 0;
}
