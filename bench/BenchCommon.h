//===- BenchCommon.h - Shared benchmark harness helpers --------*- C++ -*-===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the paper-figure benchmark binaries: the unroll
/// sweep that regenerates the balance / execution-cycles / area panels of
/// Figures 4-10, with the DSE-selected design and the device capacity
/// marked the way the paper's plots mark them.
///
//===----------------------------------------------------------------------===//

#ifndef DEFACTO_BENCH_BENCHCOMMON_H
#define DEFACTO_BENCH_BENCHCOMMON_H

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"

#include <string>

namespace defacto {
namespace bench {

/// Runs the full divisor sweep for \p KernelName on \p Platform and
/// prints the three panels of one paper figure:
///   (a) Balance vs unroll factors,
///   (b) Execution cycles,
///   (c) Design area in slices (with the device capacity marked).
/// The DSE-selected design is marked with '*'; designs exceeding the
/// device capacity with '!'. Rows are inner-loop unroll factors (the
/// paper's x axis); columns are outer-loop factors (the paper's curves).
/// With \p Csv the panels print as CSV blocks for downstream plotting.
/// \p Pipeline overrides the transformation pass pipeline (a
/// comma-separated PassRegistry list; empty keeps the default — see
/// parsePipelineFlag). Returns 0 on success, 2 on a bad pipeline.
int runFigureSweep(const std::string &FigureName,
                   const std::string &KernelName,
                   const TargetPlatform &Platform, bool Csv = false,
                   FastPathMode FastPath = FastPathMode::Off,
                   const std::string &Pipeline = "");

/// Parses the common figure-bench command line: `--csv` selects CSV
/// output.
bool parseCsvFlag(int Argc, char **Argv);

/// Parses `--fast-path=off|on|verify` (see docs/PERFORMANCE.md);
/// defaults to off, and an unrecognized mode falls back to off with a
/// warning on stderr. The figure panels are bit-identical in every mode
/// — the flag exists to time the sweep and to fuzz parity (`verify`).
FastPathMode parseFastPathFlag(int Argc, char **Argv);

/// Parses `--pipeline=p1,p2,...` (a comma-separated PassRegistry pass
/// list overriding the default transformation pipeline). Defaults to ""
/// (the built-in default pipeline); an unparsable list warns on stderr
/// — listing the registered passes — and falls back to the default, so
/// a figure bench still produces its panels.
std::string parsePipelineFlag(int Argc, char **Argv);

/// The common observability command line shared by the bench binaries:
///   --trace-out=PATH   write a Chrome trace_event file (chrome://tracing
///                      / Perfetto) of the run's decision/phase events
///   --stats            print the counter registry and phase timings at
///                      exit
///   --stats-out=PATH   write counters + timers + histograms as one JSON
///                      document at exit
struct ObservabilityFlags {
  std::string TraceOutPath; // empty: tracing stays off
  bool Stats = false;
  std::string StatsOutPath; // empty: no stats file

  bool any() const {
    return Stats || !TraceOutPath.empty() || !StatsOutPath.empty();
  }
};

/// Peels --trace-out=/--stats/--stats-out out of (\p Argc, \p Argv),
/// compacting the remaining arguments in place, and enables the global
/// TraceRecorder / StatRegistry accordingly. Call before handing argv to
/// another parser.
ObservabilityFlags parseObservabilityFlags(int &Argc, char **Argv);

/// Finishes an observed run: writes the Chrome trace when a path was
/// given, prints counters plus phase timings when --stats was, and writes
/// the stats JSON file when --stats-out was. Returns false when an output
/// file could not be written.
bool finishObservability(const ObservabilityFlags &Flags);

} // namespace bench
} // namespace defacto

#endif // DEFACTO_BENCH_BENCHCOMMON_H
