//===- serve_throughput.cpp - DSE daemon serving benchmarks ---------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures exploration-as-a-service (Serve/Server.h) end to end over a
/// real Unix-domain socket: an in-process DseServer, client threads
/// speaking the docs/SERVING.md protocol, and two phases per kernel mix:
///
///   cold   first-ever requests — every exploration pays the estimator,
///          so latency is dominated by evaluation;
///   warm   the identical requests again — served from the
///          process-lifetime EstimateCache / TransformStageCache, so
///          latency is the cache walk plus protocol overhead.
///
/// The run is also a correctness gate: every warm reply must report
/// warm=true with zero cache misses and return the bit-identical winner
/// and decision digest of its cold counterpart. The process exits
/// nonzero only on such a violation — never on a slow machine — so CI
/// can run it as a smoke test (--quick caps the repetitions).
///
/// Writes BENCH_serve.json (override with --json=PATH): cold/warm
/// latency percentiles (client-observed, microseconds), warm-phase
/// requests/sec, and the warm-over-cold p50 speedup.
///
//===----------------------------------------------------------------------===//

#include "defacto/Serve/Server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace defacto;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Reply {
  ServeResponse R;
  double ClientUs = 0; // client-observed round-trip
};

/// Issues \p Req once over a fresh connection and times the round trip.
Reply issue(const std::string &Socket, const ServeRequest &Req) {
  Reply Out;
  Expected<UnixConnection> Conn = UnixConnection::connectTo(Socket);
  if (!Conn) {
    std::fprintf(stderr, "serve_throughput: connect: %s\n",
                 Conn.status().message().c_str());
    std::exit(1);
  }
  double Start = nowUs();
  if (!Conn->sendLine(Req.toJson()).isOk())
    std::exit(1);
  Expected<std::optional<std::string>> Line = Conn->recvLine();
  if (!Line || !Line.value()) {
    std::fprintf(stderr, "serve_throughput: connection closed\n");
    std::exit(1);
  }
  Out.ClientUs = nowUs() - Start;
  Expected<ServeResponse> R = parseServeResponse(*Line.value());
  if (!R) {
    std::fprintf(stderr, "serve_throughput: bad reply: %s\n",
                 R.status().message().c_str());
    std::exit(1);
  }
  Out.R = *R;
  return Out;
}

struct Percentiles {
  size_t Count = 0;
  double P50 = 0, P95 = 0, Max = 0;
};

Percentiles percentiles(std::vector<double> V) {
  Percentiles P;
  if (V.empty())
    return P;
  std::sort(V.begin(), V.end());
  P.Count = V.size();
  P.P50 = V[V.size() / 2];
  P.P95 = V[std::min(V.size() - 1, (V.size() * 95) / 100)];
  P.Max = V.back();
  return P;
}

std::string percentilesJson(const Percentiles &P) {
  std::ostringstream OS;
  OS << "{\"count\": " << P.Count << ", \"p50_us\": " << P.P50
     << ", \"p95_us\": " << P.P95 << ", \"max_us\": " << P.Max << "}";
  return OS.str();
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath = "BENCH_serve.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
    } else if (std::strncmp(argv[I], "--json=", 7) == 0) {
      JsonPath = argv[I] + 7;
    } else {
      std::fprintf(stderr, "usage: serve_throughput [--quick] [--json=PATH]\n");
      return 2;
    }
  }

  ServeOptions Opts;
  Opts.SocketPath =
      "/tmp/defacto_serve_bench_" + std::to_string(::getpid()) + ".sock";
  Opts.NumThreads = 4;
  DseServer Server(std::move(Opts));
  Status Started = Server.start();
  if (!Started.isOk()) {
    std::fprintf(stderr, "serve_throughput: start: %s\n",
                 Started.message().c_str());
    return 1;
  }
  const std::string &Socket = Server.socketPath();

  // The request mix: every paper kernel on both platforms, digest on so
  // warm replies can prove bit-identity.
  std::vector<ServeRequest> Mix;
  for (const char *Kernel : {"FIR", "MM", "PAT", "JAC", "SOBEL"})
    for (const char *Platform :
         {"wildstar-pipelined", "wildstar-nonpipelined"}) {
      ServeRequest Req;
      Req.Kernel = Kernel;
      Req.Platform = Platform;
      Req.Budget = 40;
      Req.WantDigest = true;
      Mix.push_back(std::move(Req));
    }

  // Cold phase: first contact, sequential so attribution is exact.
  std::vector<double> ColdUs;
  std::map<std::string, ServeResponse> ColdByKey;
  for (const ServeRequest &Req : Mix) {
    Reply Out = issue(Socket, Req);
    if (Out.R.RStatus != ServeStatus::Ok &&
        Out.R.RStatus != ServeStatus::Degraded) {
      std::fprintf(stderr, "serve_throughput: cold %s/%s: %s\n",
                   Req.Kernel.c_str(), Req.Platform.c_str(),
                   Out.R.Reason.c_str());
      return 1;
    }
    ColdUs.push_back(Out.ClientUs);
    ColdByKey[Req.Kernel + "|" + Req.Platform] = Out.R;
  }

  // Warm phase: the same mix again, repeated; every reply must be warm
  // and bit-identical to its cold counterpart.
  const unsigned Rounds = Quick ? 2 : 20;
  std::vector<double> WarmUs;
  bool WarmViolation = false;
  double WarmStart = nowUs();
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    for (const ServeRequest &Req : Mix) {
      Reply Out = issue(Socket, Req);
      WarmUs.push_back(Out.ClientUs);
      const ServeResponse &Cold = ColdByKey[Req.Kernel + "|" + Req.Platform];
      if (!Out.R.Warm || Out.R.CacheMisses != 0 ||
          Out.R.Selected != Cold.Selected || Out.R.Cycles != Cold.Cycles ||
          Out.R.Digest != Cold.Digest) {
        std::fprintf(stderr,
                     "serve_throughput: WARM VIOLATION %s/%s: warm=%d "
                     "misses=%llu selected '%s' vs '%s' digest %s vs %s\n",
                     Req.Kernel.c_str(), Req.Platform.c_str(), Out.R.Warm,
                     static_cast<unsigned long long>(Out.R.CacheMisses),
                     Out.R.Selected.c_str(), Cold.Selected.c_str(),
                     Out.R.Digest.c_str(), Cold.Digest.c_str());
        WarmViolation = true;
      }
    }
  }
  double WarmSeconds = (nowUs() - WarmStart) / 1e6;
  double RequestsPerSec =
      WarmSeconds > 0 ? static_cast<double>(WarmUs.size()) / WarmSeconds : 0;

  Server.stop();

  Percentiles Cold = percentiles(ColdUs);
  Percentiles Warm = percentiles(WarmUs);
  double SpeedupP50 = Warm.P50 > 0 ? Cold.P50 / Warm.P50 : 0;

  std::ostringstream OS;
  OS << "{\n"
     << "  \"mix\": {\"kernels\": [\"FIR\", \"MM\", \"PAT\", \"JAC\", "
        "\"SOBEL\"], \"platforms\": 2, \"budget\": 40},\n"
     << "  \"quick\": " << (Quick ? "true" : "false") << ",\n"
     << "  \"cold\": " << percentilesJson(Cold) << ",\n"
     << "  \"warm\": " << percentilesJson(Warm) << ",\n"
     << "  \"warm_rounds\": " << Rounds << ",\n"
     << "  \"requests_per_sec\": " << RequestsPerSec << ",\n"
     << "  \"warm_speedup_p50\": " << SpeedupP50 << ",\n"
     << "  \"warm_bit_identical\": " << (WarmViolation ? "false" : "true")
     << "\n}\n";
  std::ofstream Json(JsonPath);
  Json << OS.str();
  Json.close();

  std::printf("serve_throughput: cold p50 %.0fus p95 %.0fus | warm p50 "
              "%.0fus p95 %.0fus | %.0f req/s | warm/cold p50 speedup "
              "%.1fx | %s\n",
              Cold.P50, Cold.P95, Warm.P50, Warm.P95, RequestsPerSec,
              SpeedupP50, WarmViolation ? "WARM VIOLATION" : "bit-identical");
  return WarmViolation ? 1 : 0;
}
