//===- BenchCommon.cpp ----------------------------------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "defacto/Support/CommandLine.h"
#include "defacto/Support/MathExtras.h"
#include "defacto/Support/Table.h"
#include "defacto/Transforms/PassRegistry.h"

#include <cstdio>

using namespace defacto;

// The flag parsing itself lives in Support/CommandLine.h (one parser for
// every driver binary); these wrappers keep the historical bench API.

bool defacto::bench::parseCsvFlag(int Argc, char **Argv) {
  cl::ArgList Args(Argc, Argv);
  return Args.consumeFlag("--csv");
}

FastPathMode defacto::bench::parseFastPathFlag(int Argc, char **Argv) {
  cl::ArgList Args(Argc, Argv);
  std::string Name = Args.consumeValue("--fast-path").value_or("off");
  if (Name == "off")
    return FastPathMode::Off;
  if (Name == "on")
    return FastPathMode::On;
  if (Name == "verify")
    return FastPathMode::Verify;
  std::fprintf(stderr,
               "warning: unknown --fast-path=%s (expected off|on|verify), "
               "using off\n",
               Name.c_str());
  return FastPathMode::Off;
}

std::string defacto::bench::parsePipelineFlag(int Argc, char **Argv) {
  cl::ArgList Args(Argc, Argv);
  std::string Text = Args.consumeValue("--pipeline").value_or("");
  if (Text.empty())
    return Text;
  if (Expected<std::vector<std::string>> Parsed = parsePipelineText(Text);
      !Parsed) {
    std::fprintf(stderr,
                 "warning: bad --pipeline: %s; using the default pipeline\n",
                 Parsed.status().message().c_str());
    return "";
  }
  return Text;
}

bench::ObservabilityFlags defacto::bench::parseObservabilityFlags(int &Argc,
                                                                  char **Argv) {
  cl::ArgList Args(Argc, Argv);
  cl::ObservabilityConfig Config = cl::consumeObservabilityFlags(Args);
  Args.compactInto(Argc, Argv);
  return {Config.TraceOutPath, Config.Stats, Config.StatsOutPath};
}

bool defacto::bench::finishObservability(const ObservabilityFlags &Flags) {
  return cl::finishObservability(
      {Flags.TraceOutPath, Flags.Stats, Flags.StatsOutPath});
}

int defacto::bench::runFigureSweep(const std::string &FigureName,
                                   const std::string &KernelName,
                                   const TargetPlatform &Platform,
                                   bool Csv, FastPathMode FastPath,
                                   const std::string &Pipeline) {
  if (!Pipeline.empty()) {
    if (Expected<std::vector<std::string>> Parsed =
            parsePipelineText(Pipeline);
        !Parsed) {
      std::fprintf(stderr, "bad pipeline: %s\n",
                   Parsed.status().message().c_str());
      return 2;
    }
  }
  Kernel K = buildKernel(KernelName);
  ExplorerOptions Opts;
  Opts.Platform = Platform;
  Opts.FastPath = FastPath;
  Opts.BaseTransforms.Pipeline = Pipeline;
  DesignSpaceExplorer Ex(K, Opts);
  ExplorationResult Dse = Ex.run();

  // Sweep the two outermost memory-relevant loops, as the paper's plots
  // do (MM's innermost loop carries no memory parallelism and stays 1).
  const SaturationInfo &Sat = Ex.saturation();
  int OuterPos = -1, InnerPos = -1;
  for (unsigned P = 0; P != Sat.MemoryVarying.size(); ++P) {
    if (!Sat.MemoryVarying[P])
      continue;
    if (OuterPos < 0)
      OuterPos = static_cast<int>(P);
    else if (InnerPos < 0)
      InnerPos = static_cast<int>(P);
  }
  if (OuterPos < 0)
    OuterPos = 0;
  if (InnerPos < 0)
    InnerPos = Sat.Trips.size() > 1 ? 1 : 0;

  std::vector<int64_t> OuterFactors = divisorsOf(Sat.Trips[OuterPos]);
  std::vector<int64_t> InnerFactors = divisorsOf(Sat.Trips[InnerPos]);

  std::printf("==== %s: %s on %s ====\n", FigureName.c_str(),
              KernelName.c_str(), Platform.Name.c_str());
  std::printf("rows: unroll of loop %d (inner axis); columns: unroll of "
              "loop %d (curves)\n",
              InnerPos, OuterPos);
  std::printf("'*' marks the DSE-selected design %s; '!' marks designs "
              "exceeding the %s-slice device\n\n",
              unrollVectorToString(Dse.Selected).c_str(),
              formatWithCommas(
                  static_cast<int64_t>(Platform.CapacitySlices))
                  .c_str());

  std::vector<std::string> Header{"inner\\outer"};
  for (int64_t Fo : OuterFactors)
    Header.push_back(std::to_string(Fo));
  Table Balance(Header), Cycles(Header), Area(Header);

  for (int64_t Fi : InnerFactors) {
    std::vector<std::string> BRow{std::to_string(Fi)};
    std::vector<std::string> CRow{std::to_string(Fi)};
    std::vector<std::string> ARow{std::to_string(Fi)};
    for (int64_t Fo : OuterFactors) {
      UnrollVector U(Sat.Trips.size(), 1);
      U[OuterPos] = Fo;
      U[InnerPos] = Fi;
      auto Est = Ex.evaluate(U);
      if (!Est) {
        BRow.push_back("-");
        CRow.push_back("-");
        ARow.push_back("-");
        continue;
      }
      std::string Mark;
      if (U == Dse.Selected)
        Mark = "*";
      if (Est->Slices > Platform.CapacitySlices)
        Mark += "!";
      BRow.push_back(formatDouble(Est->Balance, 3) + Mark);
      CRow.push_back(std::to_string(Est->Cycles) + Mark);
      ARow.push_back(formatDouble(Est->Slices, 0) + Mark);
    }
    Balance.addRow(BRow);
    Cycles.addRow(CRow);
    Area.addRow(ARow);
  }

  if (Csv) {
    std::printf("# panel,balance\n%s", Balance.toCsv().c_str());
    std::printf("# panel,cycles\n%s", Cycles.toCsv().c_str());
    std::printf("# panel,area\n%s", Area.toCsv().c_str());
  } else {
    std::printf("(a) Balance (F/C; >1 compute bound, <1 memory bound)\n%s\n",
                Balance.toString(2).c_str());
    std::printf("(b) Execution cycles\n%s\n", Cycles.toString(2).c_str());
    std::printf("(c) Design area [slices], capacity %s\n%s\n",
                formatWithCommas(
                    static_cast<int64_t>(Platform.CapacitySlices))
                    .c_str(),
                Area.toString(2).c_str());
  }

  std::printf("DSE: selected %s, cycles %llu, slices %.0f, speedup over "
              "baseline %.2fx, searched %zu of %llu designs (%.2f%%)\n\n",
              unrollVectorToString(Dse.Selected).c_str(),
              static_cast<unsigned long long>(Dse.SelectedEstimate.Cycles),
              Dse.SelectedEstimate.Slices, Dse.speedup(),
              Dse.Visited.size(),
              static_cast<unsigned long long>(Dse.FullSpaceSize),
              100.0 * Dse.fractionSearched());
  return 0;
}
