//===- ablation_search_strategies.cpp - Search strategy comparison --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Ablation: every registered search strategy over the paper kernels at
/// the default evaluation budget, with exhaustive search as the quality
/// reference. Quantifies the claim that the monotonicity-based pruning
/// finds near-best designs while synthesizing a tiny fraction of the
/// space — and, post-portfolio, that per-kernel algorithm selection
/// closes the gap on kernels where one strategy misfires.
///
///   ablation_search_strategies [--strategy NAME[,NAME...]]
///                              [--trace-out=PATH] [--stats]
///
/// Default compares every registered strategy; --strategy restricts the
/// table to the named ones (unknown names list the registry and exit).
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/CommandLine.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main(int Argc, char **Argv) {
  cl::ArgList Args(Argc, Argv);
  cl::ObservabilityConfig Obs = cl::consumeObservabilityFlags(Args);
  std::vector<std::string> Picked = Args.consumeList("--strategy");
  if (!Args.empty()) {
    std::fprintf(stderr,
                 "unknown argument '%s'\n"
                 "usage: ablation_search_strategies "
                 "[--strategy NAME[,NAME...]] [--trace-out=PATH] [--stats]\n",
                 Args.rest().front().c_str());
    return 2;
  }
  StrategyRegistry &Registry = StrategyRegistry::instance();
  for (const std::string &Name : Picked)
    if (!Registry.contains(Name)) {
      std::fprintf(stderr,
                   "unknown strategy '%s'; registered strategies:\n%s",
                   Name.c_str(), Registry.describe().c_str());
      return 2;
    }
  std::vector<std::string> Strategies =
      Picked.empty() ? Registry.names() : Picked;

  std::printf("==== Search strategies at a glance (pipelined) ====\n\n");
  Table T({"Program", "Strategy", "Evals", "Visited", "Cycles", "Slices",
           "vs best"});
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions Opts;

    // Exhaustive is the quality reference whether or not it is in the
    // table: "vs best" is relative to the true optimum.
    ExplorationResult Exh = exploreExhaustive(K, Opts);

    for (const std::string &Name : Strategies) {
      Expected<ExplorationResult> Res = exploreWithStrategy(K, Opts, Name);
      if (!Res)
        continue; // Validated above; only a racing unregister gets here.
      double Rel = static_cast<double>(Res->SelectedEstimate.Cycles) /
                   static_cast<double>(Exh.SelectedEstimate.Cycles);
      T.addRow({Spec.Name, Name, std::to_string(Res->EvaluationsUsed),
                std::to_string(Res->Visited.size()),
                std::to_string(Res->SelectedEstimate.Cycles),
                formatDouble(Res->SelectedEstimate.Slices, 0),
                formatDouble(Rel, 2) + "x"});
    }
  }
  std::printf("%s\n", T.toString(2).c_str());
  return cl::finishObservability(Obs) ? 0 : 1;
}
