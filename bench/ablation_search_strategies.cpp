//===- ablation_search_strategies.cpp - Search strategy comparison --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Ablation: the paper's balance-guided search versus exhaustive search
/// and random sampling at equal evaluation budgets. Quantifies the claim
/// that the monotonicity-based pruning finds near-best designs while
/// synthesizing a tiny fraction of the space.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main() {
  std::printf("==== Search strategies at a glance (pipelined) ====\n\n");
  Table T({"Program", "Strategy", "Evals", "Cycles", "Slices",
           "vs best"});
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions Opts;

    ExplorationResult Dse = DesignSpaceExplorer(K, Opts).run();
    ExplorationResult Exh = exploreExhaustive(K, Opts);
    // Random sampling with the same budget the guided search used.
    ExplorationResult Rnd =
        exploreRandom(K, Opts, Dse.Visited.size(), /*Seed=*/2002);

    auto addRow = [&](const char *Name, const ExplorationResult &R) {
      double Rel = static_cast<double>(R.SelectedEstimate.Cycles) /
                   static_cast<double>(Exh.SelectedEstimate.Cycles);
      T.addRow({Spec.Name, Name, std::to_string(R.Visited.size()),
                std::to_string(R.SelectedEstimate.Cycles),
                formatDouble(R.SelectedEstimate.Slices, 0),
                formatDouble(Rel, 2) + "x"});
    };
    addRow("balance-guided", Dse);
    addRow("random (same N)", Rnd);
    addRow("exhaustive", Exh);
  }
  std::printf("%s\n", T.toString(2).c_str());
  return 0;
}
