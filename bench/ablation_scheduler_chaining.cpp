//===- ablation_scheduler_chaining.cpp - Operator chaining ablation -------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Ablation over the synthesis scheduler model: Monet-era one-operator-
/// level-per-cycle scheduling (the default, matching the paper's tool)
/// versus aggressive combinational chaining within the 40 ns clock. The
/// balance landscape — and therefore which designs the DSE selects —
/// shifts toward memory-bound when the datapath gets faster.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main() {
  std::printf("==== Scheduler chaining ablation (pipelined) ====\n\n");
  Table T({"Program", "Chaining", "Selected", "Cycles", "Balance",
           "Speedup", "Evals"});
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    for (bool Chaining : {false, true}) {
      ExplorerOptions Opts;
      Opts.Platform = TargetPlatform::wildstarPipelined();
      Opts.Platform.OperatorChaining = Chaining;
      ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
      T.addRow({Spec.Name, Chaining ? "on" : "off (Monet-like)",
                unrollVectorToString(R.Selected),
                std::to_string(R.SelectedEstimate.Cycles),
                formatDouble(R.SelectedEstimate.Balance, 3),
                formatDouble(R.speedup(), 2) + "x",
                std::to_string(R.Visited.size())});
    }
  }
  std::printf("%s\n", T.toString(2).c_str());
  return 0;
}
