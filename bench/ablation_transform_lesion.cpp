//===- ablation_transform_lesion.cpp - Per-transform contribution ---------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Lesion study over the code transformations of §4: estimate every
/// kernel at its saturation-point design with one transformation
/// disabled at a time, quantifying what scalar replacement (with its
/// chain and window sub-mechanisms), loop peeling, and custom data
/// layout each contribute to the selected design's performance.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/HLS/Estimator.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

namespace {

uint64_t cyclesWith(const Kernel &K, const UnrollVector &U,
                    const TargetPlatform &P, TransformOptions Opts) {
  Opts.Unroll = U;
  Opts.Layout.NumMemories = P.NumMemories;
  TransformResult R = applyPipeline(K, Opts);
  return estimateDesign(R.K, P).Cycles;
}

} // namespace

int main() {
  std::printf("==== Transformation lesion study (pipelined, saturation "
              "design) ====\n\n");
  Table T({"Program", "Unroll", "Full", "No scalar repl", "No chains",
           "No windows", "No peeling", "No data layout"});

  TargetPlatform P = TargetPlatform::wildstarPipelined();
  for (const KernelSpec &Spec : paperKernels()) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions EOpts;
    EOpts.Platform = P;
    DesignSpaceExplorer Ex(K, EOpts);
    UnrollVector U = Ex.initialVector();

    TransformOptions Full;
    TransformOptions NoSR;
    NoSR.EnableScalarReplacement = false;
    TransformOptions NoChains;
    NoChains.SR.EnableOuterCarriedChains = false;
    TransformOptions NoWindows;
    NoWindows.SR.EnableWindows = false;
    TransformOptions NoPeel;
    NoPeel.EnablePeeling = false;
    TransformOptions NoLayout;
    NoLayout.EnableDataLayout = false;

    T.addRow({Spec.Name, unrollVectorToString(U),
              std::to_string(cyclesWith(K, U, P, Full)),
              std::to_string(cyclesWith(K, U, P, NoSR)),
              std::to_string(cyclesWith(K, U, P, NoChains)),
              std::to_string(cyclesWith(K, U, P, NoWindows)),
              std::to_string(cyclesWith(K, U, P, NoPeel)),
              std::to_string(cyclesWith(K, U, P, NoLayout))});
  }
  std::printf("%s\n", T.toString(2).c_str());
  std::printf("Reading: each lesion column shows estimated cycles when "
              "that mechanism is disabled; larger numbers mean the "
              "mechanism matters more for that kernel.\n");
  return 0;
}
