//===- ablation_device_capacity.cpp - Device size sensitivity -------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Ablation over device capacity: the paper's outlook (§1) predicts
/// denser devices supporting more sophisticated designs. Sweeping the
/// slice budget from a quarter-size device to a double-size one shows
/// the capacity-constrained paths of the algorithm (FindLargestFit and
/// capacity-driven bisection) kicking in and the selected design growing
/// with the device.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>

using namespace defacto;

int main() {
  std::printf("==== Selected design vs device capacity (pipelined) "
              "====\n\n");
  Table T({"Program", "Capacity", "Selected", "Cycles", "Slices",
           "Speedup", "Capacity-limited"});
  for (const char *Name : {"FIR", "MM"}) {
    Kernel K = buildKernel(Name);
    for (double Capacity : {3072.0, 6144.0, 12288.0, 24576.0}) {
      ExplorerOptions Opts;
      Opts.Platform = TargetPlatform::wildstarPipelined();
      Opts.Platform.CapacitySlices = Capacity;
      ExplorationResult R = DesignSpaceExplorer(K, Opts).run();
      bool Limited =
          R.Trace.find("capacity") != std::string::npos ||
          R.Trace.find("FindLargestFit") != std::string::npos;
      std::string Note = Limited ? "yes" : "no";
      if (!R.SelectedFits)
        Note = "DOES NOT FIT";
      T.addRow({Name, formatWithCommas(static_cast<int64_t>(Capacity)),
                unrollVectorToString(R.Selected),
                std::to_string(R.SelectedEstimate.Cycles),
                formatDouble(R.SelectedEstimate.Slices, 0),
                formatDouble(R.speedup(), 2) + "x", Note});
    }
  }
  std::printf("%s\n", T.toString(2).c_str());
  std::printf("Reading: small devices trigger FindLargestFit / "
              "capacity bisection; larger devices admit the "
              "balance-optimal design and speedups grow with density "
              "(the paper's Moore's-law outlook).\n");
  return 0;
}
