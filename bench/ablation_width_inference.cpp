//===- ablation_width_inference.cpp - Bit-width inference ablation --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Ablation over datapath bit-width inference. §2.4 of the paper argues
/// FPGAs win on multimedia codes partly through "reduced data widths";
/// this bench quantifies it: estimating each kernel's saturation design
/// with declared-type widths versus value-range-inferred widths. The
/// 8/16-bit kernels (PAT, JAC, SOBEL and the morphological pair) shed
/// the most datapath area.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>
#include <vector>

using namespace defacto;

int main() {
  std::printf("==== Bit-width inference ablation (pipelined, saturation "
              "design) ====\n\n");
  Table T({"Program", "Elem bits", "Slices (uniform32)",
           "Slices (declared)", "Slices (inferred)", "Saved vs 32-bit",
           "Cycles (inferred)"});

  std::vector<KernelSpec> All = paperKernels();
  for (const KernelSpec &Spec : extendedKernels())
    All.push_back(Spec);

  for (const KernelSpec &Spec : All) {
    Kernel K = buildKernel(Spec.Name);
    ExplorerOptions EOpts;
    DesignSpaceExplorer Ex(K, EOpts);
    UnrollVector U = Ex.initialVector();

    TransformOptions TO;
    TO.Unroll = U;
    TransformResult R = applyPipeline(K, TO);

    TargetPlatform Declared = TargetPlatform::wildstarPipelined();
    TargetPlatform Inferred = Declared;
    Inferred.Widths = TargetPlatform::WidthModel::Inferred;
    TargetPlatform Uniform = Declared;
    Uniform.Widths = TargetPlatform::WidthModel::Uniform32;

    SynthesisEstimate ED = estimateDesign(R.K, Declared);
    SynthesisEstimate EI = estimateDesign(R.K, Inferred);
    SynthesisEstimate EU = estimateDesign(R.K, Uniform);

    unsigned ElemBits = 32;
    for (const auto &A : K.arrays())
      ElemBits = std::min(ElemBits, bitWidth(A->elementType()));

    double Saved = 100.0 * (EU.Slices - EI.Slices) / EU.Slices;
    T.addRow({Spec.Name, std::to_string(ElemBits),
              formatDouble(EU.Slices, 0), formatDouble(ED.Slices, 0),
              formatDouble(EI.Slices, 0), formatDouble(Saved, 1) + "%",
              std::to_string(EI.Cycles)});
  }
  std::printf("%s\n", T.toString(2).c_str());
  std::printf("Reading: against the standard 32-bit datapath "
              "(uniform32), exact inferred widths recover the \"reduced "
              "data widths\" advantage of §2.4 for the 8/16-bit "
              "kernels; against declared-type widths, inference can "
              "legitimately grow estimates (real carry growth the "
              "declared model undersizes).\n");
  return 0;
}
