//===- perf_dse_throughput.cpp - DSE wall-clock benchmarks ----------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark timings of the exploration itself. The paper reports
/// the algorithm completing "in less than 5 minutes for each
/// application" with Monet-in-the-loop estimation; with the built-in
/// estimator the whole exploration runs in milliseconds, making the
/// comparison points the number of synthesis estimations and the
/// engine's throughput across worker-thread counts.
///
/// The parallel benchmarks sweep threads = 1/2/4/8 over the guided walk
/// (speculative frontier evaluation), the exhaustive baseline (candidate
/// fan-out), and the multi-kernel batch driver. Every case runs on a
/// fresh estimate cache per iteration, so the numbers measure cold
/// exploration throughput, not cache replay.
///
/// Counters: "estimations" is the per-iteration mean of estimator
/// attempts actually spent; "cache_hit_rate" the per-iteration mean of
/// the estimate cache's hit rate. Besides the normal benchmark output
/// the binary writes a machine-readable summary (wall time, estimations
/// and cache hits per kernel and thread count) to BENCH_dse.json;
/// --json=PATH redirects it. After the timed benchmarks one instrumented
/// exploration pass over the paper kernels fills the report's "cache",
/// "phase_timings_ms" and "trace_event_count" blocks; --trace-out=PATH
/// additionally writes that pass's Chrome trace and --stats prints the
/// counter registry (BenchCommon.h).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

using namespace defacto;

namespace {

/// One row of the BENCH_dse.json report.
struct JsonRecord {
  std::string Benchmark;
  std::string Kernel; // "ALL" for the batch driver
  std::string Mode;   // guided / exhaustive / batch / ...
  unsigned Threads = 1;
  uint64_t Iterations = 0;
  double WallSecondsMean = 0;
  double EstimationsMean = 0;
  double CacheHitRateMean = 0;
  uint64_t CacheHitsTotal = 0;
};

std::mutex RecordsMutex;
std::vector<JsonRecord> Records;

/// Per-benchmark accumulator: sums per-iteration observations, reports
/// the means as counters, and files one JsonRecord at teardown.
class StatsSink {
public:
  StatsSink(benchmark::State &State, std::string Kernel, std::string Mode,
            unsigned Threads)
      : State(State), Kernel(std::move(Kernel)), Mode(std::move(Mode)),
        Threads(Threads) {}

  void observe(double Seconds, unsigned Estimations,
               const EstimateCache::Stats &Cache) {
    ++Iterations;
    Seconds_ += Seconds;
    Estimations_ += Estimations;
    HitRate_ += Cache.hitRate();
    Hits_ += Cache.Hits;
  }

  ~StatsSink() {
    if (Iterations == 0)
      return;
    double N = static_cast<double>(Iterations);
    // kAvgIterations would divide by the framework's iteration count;
    // feed it per-iteration means directly so partial final batches
    // cannot skew the counters.
    State.counters["estimations"] =
        benchmark::Counter(Estimations_ / N);
    State.counters["cache_hit_rate"] = benchmark::Counter(HitRate_ / N);

    JsonRecord R;
    R.Benchmark = Kernel + "/" + Mode + "/threads:" +
                  std::to_string(Threads);
    R.Kernel = Kernel;
    R.Mode = Mode;
    R.Threads = Threads;
    R.Iterations = Iterations;
    R.WallSecondsMean = Seconds_ / N;
    R.EstimationsMean = Estimations_ / N;
    R.CacheHitRateMean = HitRate_ / N;
    R.CacheHitsTotal = Hits_;
    std::lock_guard<std::mutex> Lock(RecordsMutex);
    Records.push_back(std::move(R));
  }

private:
  benchmark::State &State;
  std::string Kernel, Mode;
  unsigned Threads;
  uint64_t Iterations = 0;
  double Seconds_ = 0, Estimations_ = 0, HitRate_ = 0;
  uint64_t Hits_ = 0;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BM_Exploration(benchmark::State &State, const char *Name,
                    bool Pipelined) {
  Kernel K = buildKernel(Name);
  ExplorerOptions Opts;
  Opts.Platform = Pipelined ? TargetPlatform::wildstarPipelined()
                            : TargetPlatform::wildstarNonPipelined();
  StatsSink Sink(State, Name, Pipelined ? "guided" : "guided-nonpipelined",
                 1);
  for (auto _ : State) {
    double T0 = now();
    DesignSpaceExplorer Ex(K, Opts);
    ExplorationResult R = Ex.run();
    benchmark::DoNotOptimize(R.SelectedEstimate.Cycles);
    Sink.observe(now() - T0, R.EvaluationsUsed,
                 Ex.estimateCache()->stats());
  }
}

void BM_ExplorationThreads(benchmark::State &State, const char *Name) {
  Kernel K = buildKernel(Name);
  unsigned Threads = static_cast<unsigned>(State.range(0));
  // One pool for the whole benchmark: thread spawn cost is not part of
  // an exploration. The cache is fresh per iteration (cold throughput).
  auto Pool = std::make_shared<ThreadPool>(Threads);
  StatsSink Sink(State, Name, "guided", Threads);
  for (auto _ : State) {
    ExplorerOptions Opts;
    Opts.NumThreads = Threads;
    if (Threads > 1)
      Opts.Pool = Pool;
    Opts.Cache = std::make_shared<EstimateCache>();
    double T0 = now();
    DesignSpaceExplorer Ex(K, Opts);
    ExplorationResult R = Ex.run();
    benchmark::DoNotOptimize(R.SelectedEstimate.Cycles);
    Sink.observe(now() - T0, R.EvaluationsUsed, Opts.Cache->stats());
  }
}

void BM_ExhaustiveThreads(benchmark::State &State, const char *Name) {
  Kernel K = buildKernel(Name);
  unsigned Threads = static_cast<unsigned>(State.range(0));
  auto Pool = std::make_shared<ThreadPool>(Threads);
  StatsSink Sink(State, Name, "exhaustive", Threads);
  for (auto _ : State) {
    ExplorerOptions Opts;
    Opts.NumThreads = Threads;
    if (Threads > 1)
      Opts.Pool = Pool;
    Opts.Cache = std::make_shared<EstimateCache>();
    double T0 = now();
    ExplorationResult R = exploreExhaustive(K, Opts);
    benchmark::DoNotOptimize(R.SelectedEstimate.Cycles);
    Sink.observe(now() - T0, R.EvaluationsUsed, Opts.Cache->stats());
  }
}

void BM_BatchThreads(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  auto Pool = std::make_shared<ThreadPool>(Threads);
  StatsSink Sink(State, "ALL", "batch", Threads);
  for (auto _ : State) {
    BatchOptions Batch;
    Batch.NumThreads = Threads;
    if (Threads > 1)
      Batch.Pool = Pool;
    Batch.Cache = std::make_shared<EstimateCache>();
    BatchExplorer Engine(Batch);
    for (const KernelSpec &Spec : paperKernels())
      Engine.addJob(buildKernel(Spec.Name), ExplorerOptions{});
    double T0 = now();
    std::vector<BatchResult> Results = Engine.runAll();
    double Elapsed = now() - T0;
    unsigned Evals = 0;
    for (const BatchResult &R : Results)
      Evals += R.Result.EvaluationsUsed;
    benchmark::DoNotOptimize(Results.size());
    Sink.observe(Elapsed, Evals, Batch.Cache->stats());
  }
}

void BM_SingleEstimate(benchmark::State &State, const char *Name) {
  Kernel K = buildKernel(Name);
  ExplorerOptions Opts;
  for (auto _ : State) {
    DesignSpaceExplorer Ex(K, Opts);
    auto Est = Ex.evaluate(Ex.initialVector());
    benchmark::DoNotOptimize(Est->Cycles);
  }
}

void BM_TransformPipeline(benchmark::State &State, const char *Name) {
  Kernel K = buildKernel(Name);
  TransformOptions Opts;
  Opts.Unroll = {2, 2};
  for (auto _ : State) {
    TransformResult R = applyPipeline(K, Opts);
    benchmark::DoNotOptimize(R.K.body().size());
  }
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// Observability data for the JSON report, gathered by one instrumented
/// exploration pass after the timed benchmarks finish (the benchmarks
/// themselves run with recording off, so the timings never measure the
/// instrumentation).
struct ObservedPass {
  EstimateCache::Stats Cache;
  std::string PhaseTimingsJson = "{}";
  size_t TraceEvents = 0;
};

ObservedPass runObservedPass() {
  StatRegistry::instance().setEnabled(true);
  TraceRecorder::global().setEnabled(true);
  TimerGroup::global().reset();
  auto Cache = std::make_shared<EstimateCache>();
  for (const KernelSpec &Spec : paperKernels()) {
    ExplorerOptions Opts;
    Opts.Cache = Cache;
    DesignSpaceExplorer Ex(buildKernel(Spec.Name), Opts);
    ExplorationResult R = Ex.run();
    benchmark::DoNotOptimize(R.EvaluationsUsed);
  }
  ObservedPass P;
  P.Cache = Cache->stats();
  P.PhaseTimingsJson = TimerGroup::global().toJson();
  P.TraceEvents = TraceRecorder::global().eventCount();
  return P;
}

void writeJsonReport(const std::string &Path, const ObservedPass &Obs) {
  // The framework's warmup and iteration-count probe runs each file a
  // record too; keep only the real measurement (the most iterations)
  // per benchmark.
  std::vector<JsonRecord> Final;
  for (const JsonRecord &R : Records) {
    auto It = std::find_if(Final.begin(), Final.end(),
                           [&R](const JsonRecord &F) {
                             return F.Benchmark == R.Benchmark;
                           });
    if (It == Final.end())
      Final.push_back(R);
    else if (R.Iterations > It->Iterations)
      *It = R;
  }

  std::ostringstream OS;
  OS << "{\n  \"benchmarks\": [\n";
  for (size_t I = 0; I != Final.size(); ++I) {
    const JsonRecord &R = Final[I];
    OS << "    {\"benchmark\": \"" << jsonEscape(R.Benchmark)
       << "\", \"kernel\": \"" << jsonEscape(R.Kernel) << "\", \"mode\": \""
       << jsonEscape(R.Mode) << "\", \"threads\": " << R.Threads
       << ", \"iterations\": " << R.Iterations
       << ", \"wall_seconds_mean\": " << R.WallSecondsMean
       << ", \"estimations_mean\": " << R.EstimationsMean
       << ", \"cache_hit_rate_mean\": " << R.CacheHitRateMean
       << ", \"cache_hits_total\": " << R.CacheHitsTotal << "}"
       << (I + 1 == Final.size() ? "\n" : ",\n");
  }
  OS << "  ],\n";
  OS << "  \"cache\": {\"lookups\": " << Obs.Cache.Lookups
     << ", \"hits\": " << Obs.Cache.Hits
     << ", \"negative_hits\": " << Obs.Cache.NegativeHits
     << ", \"misses\": " << Obs.Cache.Misses
     << ", \"waits\": " << Obs.Cache.Waits
     << ", \"inserts\": " << Obs.Cache.Inserts
     << ", \"hit_rate\": " << Obs.Cache.hitRate() << "},\n";
  OS << "  \"phase_timings_ms\": " << Obs.PhaseTimingsJson << ",\n";
  OS << "  \"trace_event_count\": " << Obs.TraceEvents << "\n";
  OS << "}\n";
  std::ofstream Out(Path);
  Out << OS.str();
}

} // namespace

BENCHMARK_CAPTURE(BM_Exploration, fir_pipelined, "FIR", true);
BENCHMARK_CAPTURE(BM_Exploration, fir_nonpipelined, "FIR", false);
BENCHMARK_CAPTURE(BM_Exploration, mm_pipelined, "MM", true);
BENCHMARK_CAPTURE(BM_Exploration, pat_pipelined, "PAT", true);
BENCHMARK_CAPTURE(BM_Exploration, jac_pipelined, "JAC", true);
BENCHMARK_CAPTURE(BM_Exploration, sobel_pipelined, "SOBEL", true);
BENCHMARK_CAPTURE(BM_ExplorationThreads, fir, "FIR")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ExplorationThreads, mm, "MM")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ExplorationThreads, sobel, "SOBEL")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ExhaustiveThreads, fir, "FIR")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_ExhaustiveThreads, mm, "MM")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_BatchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_SingleEstimate, fir, "FIR");
BENCHMARK_CAPTURE(BM_SingleEstimate, mm, "MM");
BENCHMARK_CAPTURE(BM_TransformPipeline, fir, "FIR");
BENCHMARK_CAPTURE(BM_TransformPipeline, sobel, "SOBEL");

int main(int argc, char **argv) {
  // Peel --trace-out=/--stats first, then our --json flag, before
  // google-benchmark sees the argv.
  bench::ObservabilityFlags Obs = bench::parseObservabilityFlags(argc, argv);
  // The timed benchmarks always run with recording off: counters, timers
  // and a trace of every iteration would measure the instrumentation.
  // The flags apply to the instrumented pass that follows the benchmarks.
  StatRegistry::instance().setEnabled(false);
  TraceRecorder::global().setEnabled(false);

  std::string JsonPath = "BENCH_dse.json";
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0) {
      JsonPath = argv[I] + 7;
      continue;
    }
    Args.push_back(argv[I]);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  ObservedPass Observed = runObservedPass();
  if (!JsonPath.empty())
    writeJsonReport(JsonPath, Observed);
  if (!bench::finishObservability(Obs))
    return 1;
  return 0;
}
