//===- perf_dse_throughput.cpp - DSE wall-clock benchmarks ----------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark timings of the exploration itself. The paper reports
/// the algorithm completing "in less than 5 minutes for each
/// application" with Monet-in-the-loop estimation; with the built-in
/// estimator the whole exploration runs in milliseconds, making the
/// comparison point the number of synthesis estimations rather than the
/// wall clock.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Kernels/Kernels.h"

#include <benchmark/benchmark.h>

using namespace defacto;

namespace {

void BM_Exploration(benchmark::State &State, const char *Name,
                    bool Pipelined) {
  Kernel K = buildKernel(Name);
  ExplorerOptions Opts;
  Opts.Platform = Pipelined ? TargetPlatform::wildstarPipelined()
                            : TargetPlatform::wildstarNonPipelined();
  uint64_t Evals = 0;
  for (auto _ : State) {
    DesignSpaceExplorer Ex(K, Opts);
    ExplorationResult R = Ex.run();
    Evals = R.Visited.size();
    benchmark::DoNotOptimize(R.SelectedEstimate.Cycles);
  }
  State.counters["estimations"] = static_cast<double>(Evals);
}

void BM_SingleEstimate(benchmark::State &State, const char *Name) {
  Kernel K = buildKernel(Name);
  ExplorerOptions Opts;
  for (auto _ : State) {
    DesignSpaceExplorer Ex(K, Opts);
    auto Est = Ex.evaluate(Ex.initialVector());
    benchmark::DoNotOptimize(Est->Cycles);
  }
}

void BM_TransformPipeline(benchmark::State &State, const char *Name) {
  Kernel K = buildKernel(Name);
  TransformOptions Opts;
  Opts.Unroll = {2, 2};
  for (auto _ : State) {
    TransformResult R = applyPipeline(K, Opts);
    benchmark::DoNotOptimize(R.K.body().size());
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_Exploration, fir_pipelined, "FIR", true);
BENCHMARK_CAPTURE(BM_Exploration, fir_nonpipelined, "FIR", false);
BENCHMARK_CAPTURE(BM_Exploration, mm_pipelined, "MM", true);
BENCHMARK_CAPTURE(BM_Exploration, pat_pipelined, "PAT", true);
BENCHMARK_CAPTURE(BM_Exploration, jac_pipelined, "JAC", true);
BENCHMARK_CAPTURE(BM_Exploration, sobel_pipelined, "SOBEL", true);
BENCHMARK_CAPTURE(BM_SingleEstimate, fir, "FIR");
BENCHMARK_CAPTURE(BM_SingleEstimate, mm, "MM");
BENCHMARK_CAPTURE(BM_TransformPipeline, fir, "FIR");
BENCHMARK_CAPTURE(BM_TransformPipeline, sobel, "SOBEL");

BENCHMARK_MAIN();
