//===- quickstart.cpp - Five-minute tour of the DEFACTO-DSE API -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: write a loop-nest kernel in C, let the design space
/// exploration pick unroll factors for the target board, and look at
/// what the compiler did.
///
///   1. parseKernel       - C subset -> loop-nest IR
///   2. DesignSpaceExplorer::run - the paper's Figure-2 algorithm
///   3. applyPipeline     - materialize the selected design
///   4. printKernel       - inspect the transformed code
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/Sim/Interpreter.h"

#include <cstdio>

using namespace defacto;

int main() {
  // A small correlation kernel, written as plain C. No pragmas, no
  // annotations: the compiler decides everything.
  const char *Source = "int X[80];\n"
                       "int W[16];\n"
                       "int Y[64];\n"
                       "for (i = 0; i < 64; i++)\n"
                       "  for (j = 0; j < 16; j++)\n"
                       "    Y[i] = Y[i] + X[i + j] * W[j];\n";

  // 1. Front end.
  DiagnosticEngine Diags;
  std::optional<Kernel> K = parseKernel(Source, "correlate", Diags);
  if (!K) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.toString().c_str());
    return 1;
  }

  // 2. Explore the design space for the pipelined WildStar board.
  ExplorerOptions Opts;
  Opts.Platform = TargetPlatform::wildstarPipelined();
  DesignSpaceExplorer Explorer(*K, Opts);
  ExplorationResult R = Explorer.run();

  std::printf("design space: %llu unroll vectors; evaluated %zu "
              "(%.2f%%)\n",
              static_cast<unsigned long long>(R.FullSpaceSize),
              R.Visited.size(), 100.0 * R.fractionSearched());
  std::printf("saturation point Psat = %lld (R=%u read sets, W=%u write "
              "sets, %u memories)\n",
              static_cast<long long>(R.Sat.Psat), R.Sat.R, R.Sat.W,
              Opts.Platform.NumMemories);
  std::printf("\nsearch trace:\n%s\n", R.Trace.c_str());
  std::printf("selected design: unroll %s -> %llu cycles, %.0f slices, "
              "%.2fx speedup over the no-unrolling baseline\n\n",
              unrollVectorToString(R.Selected).c_str(),
              static_cast<unsigned long long>(R.SelectedEstimate.Cycles),
              R.SelectedEstimate.Slices, R.speedup());

  // 3. Materialize the selected design.
  TransformOptions TO;
  TO.Unroll = R.Selected;
  TO.Layout.NumMemories = Opts.Platform.NumMemories;
  TransformResult Design = applyPipeline(*K, TO);

  // The transformations never change results: prove it on random data.
  if (simulate(*K, 7) != simulate(Design.K, 7)) {
    std::fprintf(stderr, "BUG: transformed kernel diverges\n");
    return 1;
  }
  std::printf("functional check: transformed design matches the source "
              "kernel on random inputs\n\n");

  // 4. Show the hardware-shaped code.
  std::printf("transformed kernel (registers, rotating chains, memory "
              "banks):\n%s", printKernel(Design.K).c_str());
  return 0;
}
