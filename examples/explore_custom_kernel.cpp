//===- explore_custom_kernel.cpp - Command-line exploration driver --------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The DEFACTO command-line flow for user-supplied kernels:
///
///   explore_custom_kernel [file.c] [--non-pipelined] [--memories N]
///                         [--vhdl] [--register-cap N] [--breakdown]
///                         [--schedule] [--fail-rate P] [--fault-seed S]
///                         [--deadline SEC] [--retries N]
///
/// Reads a C loop-nest kernel (stdin or a file), reports diagnostics on
/// malformed input, explores the design space, and optionally dumps the
/// behavioral VHDL of the selected design. With no file argument a
/// built-in demosaicing-style kernel is used.
///
/// The fault flags demonstrate the degradation policy: --fail-rate
/// injects seeded estimator failures, --deadline bounds the wall-clock,
/// --retries sets the per-design retry budget; a degraded run reports
/// its failure log and still returns the best design evaluated.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/Frontend/Parser.h"
#include "defacto/HLS/FaultInjector.h"
#include "defacto/IR/IRPrinter.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Support/Table.h"
#include "defacto/VHDL/VhdlEmitter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace defacto;

namespace {

const char *DefaultSource = "char raw[36][36];\n"
                            "short out[36][36];\n"
                            "for (i = 1; i < 33; i++)\n"
                            "  for (j = 1; j < 33; j++)\n"
                            "    out[i][j] = (2 * raw[i][j]\n"
                            "      + raw[i][j - 1] + raw[i][j + 1]\n"
                            "      + raw[i - 1][j] + raw[i + 1][j]) / 6;\n";

} // namespace

int main(int Argc, char **Argv) {
  std::string Source = DefaultSource;
  std::string Name = "demosaic";
  ExplorerOptions Opts;
  Opts.Platform = TargetPlatform::wildstarPipelined();
  bool EmitVhdlOutput = false;
  bool ShowBreakdown = false;
  bool ShowSchedule = false;
  FaultInjectorOptions Faults;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--non-pipelined") == 0) {
      Opts.Platform = TargetPlatform::wildstarNonPipelined();
    } else if (std::strcmp(Argv[I], "--vhdl") == 0) {
      EmitVhdlOutput = true;
    } else if (std::strcmp(Argv[I], "--breakdown") == 0) {
      ShowBreakdown = true;
    } else if (std::strcmp(Argv[I], "--schedule") == 0) {
      ShowSchedule = true;
    } else if (std::strcmp(Argv[I], "--memories") == 0 && I + 1 < Argc) {
      Opts.Platform.NumMemories =
          static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--register-cap") == 0 &&
               I + 1 < Argc) {
      Opts.RegisterCap = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--fail-rate") == 0 && I + 1 < Argc) {
      Faults.FailureRate = std::atof(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--fault-seed") == 0 && I + 1 < Argc) {
      Faults.Seed = static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--deadline") == 0 && I + 1 < Argc) {
      Opts.DeadlineSeconds = std::atof(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--retries") == 0 && I + 1 < Argc) {
      Opts.MaxRetries = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else {
      std::ifstream File(Argv[I]);
      if (!File) {
        std::fprintf(stderr, "error: cannot open '%s'\n", Argv[I]);
        return 1;
      }
      std::ostringstream Buf;
      Buf << File.rdbuf();
      Source = Buf.str();
      Name = Argv[I];
    }
  }

  DiagnosticEngine Diags;
  std::optional<Kernel> K = parseKernel(Source, Name, Diags);
  if (!K) {
    std::fprintf(stderr, "%s: kernel rejected\n%s", Name.c_str(),
                 Diags.toString().c_str());
    return 1;
  }
  std::printf("kernel '%s' accepted:\n%s\n", Name.c_str(),
              printKernel(*K).c_str());

  FaultInjector Injector(Faults);
  if (Faults.FailureRate > 0)
    Opts.Estimator = Injector.wrapDefault();

  DesignSpaceExplorer Explorer(*K, Opts);
  ExplorationResult R = Explorer.run();
  std::printf("platform %s: Psat=%lld, space=%llu designs\n",
              Opts.Platform.Name.c_str(),
              static_cast<long long>(R.Sat.Psat),
              static_cast<unsigned long long>(R.FullSpaceSize));
  std::printf("%s", R.Trace.c_str());
  std::printf("selected %s: %llu cycles, %.0f slices, %u registers, "
              "%.2fx speedup, searched %.2f%% of the space\n",
              unrollVectorToString(R.Selected).c_str(),
              static_cast<unsigned long long>(R.SelectedEstimate.Cycles),
              R.SelectedEstimate.Slices, R.SelectedEstimate.Registers,
              R.speedup(), 100.0 * R.fractionSearched());
  if (!R.SelectedFits)
    std::printf("warning: no evaluated design fits this device\n");
  if (R.Degraded) {
    std::printf("degraded run: %u estimator call(s), %zu failure(s)\n",
                R.EvaluationsUsed, R.Failures.size());
    for (const EvaluationFailure &F : R.Failures)
      std::printf("  %s after %u attempt(s): %s\n",
                  unrollVectorToString(F.U).c_str(), F.Attempts,
                  F.Error.toString().c_str());
  }

  if (EmitVhdlOutput || ShowBreakdown || ShowSchedule) {
    TransformOptions TO;
    TO.Unroll = R.Selected;
    TO.Layout.NumMemories = Opts.Platform.NumMemories;
    TransformResult Design = applyPipeline(*K, TO);

    if (ShowBreakdown) {
      std::vector<RegionReport> Breakdown;
      estimateDesign(Design.K, Opts.Platform, &Breakdown);
      Table T({"region", "executions", "cycles/exec", "total", "reads",
               "writes"});
      for (const RegionReport &Region : Breakdown)
        T.addRow({Region.Path, std::to_string(Region.Executions),
                  std::to_string(Region.CyclesPerExecution),
                  std::to_string(Region.totalCycles()),
                  std::to_string(Region.MemReads),
                  std::to_string(Region.MemWrites)});
      std::printf("\nschedule breakdown (loop overhead excluded):\n%s",
                  T.toString(2).c_str());
    }

    if (ShowSchedule) {
      // Gantt of the steady-state innermost body (the hot region).
      ForStmt *Inner = nullptr;
      for (ForStmt *F : collectLoops(Design.K.body()))
        if (collectLoops(F->body()).empty())
          Inner = F;
      if (Inner) {
        std::vector<const Stmt *> Segment;
        for (const StmtPtr &S : Inner->body())
          Segment.push_back(S.get());
        DFG Graph = buildSegmentDFG(
            Segment, [&](const ArrayAccessExpr *A) {
              if (A->steadyStatePort() >= 0)
                return A->steadyStatePort();
              return std::max(0, A->array()->physicalMemId());
            });
        DetailedSchedule Sched =
            scheduleSegmentDetailed(Graph, Opts.Platform);
        std::printf("\nsteady-state body schedule (loop %s):\n%s",
                    Inner->indexName().c_str(),
                    renderScheduleGantt(Graph, Sched).c_str());
      }
    }

    if (EmitVhdlOutput)
      std::printf("\n%s", emitVhdl(Design.K).c_str());
  }
  return 0;
}
