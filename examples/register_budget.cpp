//===- register_budget.cpp - §5.4 register-pressure control ---------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Demonstrates the paper's §5.4: when full reuse would need too many
/// on-chip registers, the localized iteration space is shrunk so less
/// reuse is exploited — the design gets smaller (and may then afford
/// more operator parallelism), at the cost of a lower fetch rate.
///
/// Two mechanisms are shown on MM (whose B-matrix chain wants 64
/// registers at the baseline): the explorer's register cap, and explicit
/// strip-mining of the nest.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/HLS/Estimator.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"
#include "defacto/Transforms/Interchange.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/Pipeline.h"
#include "defacto/Transforms/Tiling.h"

#include <cstdio>

using namespace defacto;

int main() {
  Kernel MM = buildKernel("MM");
  TargetPlatform Board = TargetPlatform::wildstarPipelined();

  std::printf("== Explorer register caps on MM ==\n\n");
  Table T({"Register cap", "Selected", "Registers", "Cycles", "Slices",
           "Speedup"});
  for (unsigned Cap : {0u, 200u, 100u, 50u, 20u}) {
    ExplorerOptions Opts;
    Opts.Platform = Board;
    if (Cap != 0)
      Opts.RegisterCap = Cap;
    ExplorationResult R = DesignSpaceExplorer(MM, Opts).run();
    T.addRow({Cap == 0 ? "none" : std::to_string(Cap),
              unrollVectorToString(R.Selected),
              std::to_string(R.SelectedEstimate.Registers),
              std::to_string(R.SelectedEstimate.Cycles),
              formatDouble(R.SelectedEstimate.Slices, 0),
              formatDouble(R.speedup(), 2) + "x"});
  }
  std::printf("%s\n", T.toString(2).c_str());

  std::printf("== Tiling FIR's reuse loop (strip-mine + interchange, "
              "§5.4) ==\n\n");
  // Strip-mining the i loop alone leaves the C chain spanning the whole
  // sweep; hoisting the tile loop above the reuse carrier (j) localizes
  // the iteration space, so the chain shrinks to one tile.
  Kernel FIR = buildKernel("FIR");
  Table T2({"Tile", "Registers", "Cycles", "Slices", "Fetch rate"});
  for (int64_t Tile : {0, 16, 8, 4}) {
    Kernel K = FIR.clone();
    normalizeLoops(K);
    if (Tile != 0) {
      int InnerId = perfectNest(K.topLoop())[1]->loopId();
      if (!stripMine(K, InnerId, Tile) || !interchangeLoops(K, 0, 1)) {
        std::fprintf(stderr, "tiling failed for tile %lld\n",
                     static_cast<long long>(Tile));
        return 1;
      }
    }
    scalarReplace(K);
    peelGuardedIterations(K);
    applyDataLayout(K, {Board.NumMemories});
    SynthesisEstimate Est = estimateDesign(K, Board);
    T2.addRow({Tile == 0 ? "full reuse" : std::to_string(Tile),
               std::to_string(Est.Registers),
               std::to_string(Est.Cycles), formatDouble(Est.Slices, 0),
               formatDouble(Est.FetchRate, 1)});
  }
  std::printf("%s\n", T2.toString(2).c_str());
  std::printf("Reading: smaller tiles exploit less reuse — fewer "
              "registers and a lower effective fetch rate (more memory "
              "traffic), the space/time knob of §5.4.\n");
  return 0;
}
