//===- explore_batch.cpp - Multi-kernel DSE driver ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Explores many kernels concurrently on one worker pool with one shared
/// estimate cache — the deployment shape of §2.4's application class,
/// where a whole image-processing pipeline of kernels targets one board:
///
///   explore_batch [--threads N] [--strategy NAME] [--exhaustive]
///                 [--both-platforms] [--extended] [--kernels fir,mm,...]
///                 [--repeat N] [--pipeline=p1,p2,...] [--trace-out=PATH]
///                 [--stats] [--stats-out=PATH] [--explain]
///                 [--journal=PATH] [--resume] [--watchdog=SECONDS]
///                 [--breaker-threshold=N] [--breaker-cooldown=SECONDS]
///                 [--fast-path=off|on|verify] [--metrics-out=PATH]
///                 [--metrics-interval-ms=N] [--metrics-prom=PATH]
///
/// --strategy selects any StrategyRegistry search ("guided",
/// "exhaustive", "random", "hillclimb", "portfolio", "guided+tile", or
/// one a caller registered); an unknown name lists the registry and
/// exits. --exhaustive is the historical shorthand for --strategy
/// exhaustive.
///
/// --pipeline overrides the transformation pass pipeline for every job
/// with a comma-separated PassRegistry list (e.g.
/// "normalize,unroll,fold"); an unknown pass name lists the registry and
/// exits. Custom pipelines bypass the transform-stage cache, so combine
/// with --fast-path only to measure that cost.
///
/// Prints one row per job (strategy, selected design, speedup,
/// evaluations) plus the shared cache's hit statistics. --repeat queues
/// each job twice to demonstrate cross-job cache reuse: the second copy
/// costs zero estimator calls. --trace-out writes a Chrome trace_event
/// file of every search decision (one track per job; load in
/// chrome://tracing or Perfetto), --stats prints the counter registry and
/// phase timings, and --explain renders the full exploration report per
/// job (per-strategy sections for portfolio runs).
///
/// Crash safety: --journal makes every completed evaluation durable
/// (JSONL, write-then-rename) and --resume replays an interrupted run's
/// journal into the shared cache, reproducing finished jobs without
/// re-invoking the backend. --watchdog arms the per-evaluation hang
/// watchdog; --breaker-threshold enables the per-backend circuit breaker
/// (--breaker-cooldown tunes its open interval).
///
/// Live telemetry (docs/OBSERVABILITY.md "Live metrics"): --metrics-out
/// appends one JSONL snapshot of every counter, phase timer, latency
/// histogram, and progress gauge per interval (write-then-rename, so
/// `defacto_monitor` can tail it live), --metrics-interval-ms sets the
/// sampling period (default 250), and --metrics-prom maintains an
/// OpenMetrics/Prometheus text exposition of the latest snapshot.
/// --stats-out writes the final counters + timers + histograms as one
/// JSON document.
///
/// --fast-path=on evaluates through the fast-path engine (arena-allocated
/// IR clones, one shared transform-stage cache across all jobs, the
/// replication-aware estimator) — identical selections, decision digests,
/// and table output, fewer milliseconds. --fast-path=verify runs both
/// engines per evaluation and cross-checks every estimate field bit for
/// bit (violations land in the fastpath.parity_violations counter).
///
/// Exit codes: 0 all jobs healthy; 3 batch completed but at least one
/// job degraded (fault/deadline/budget/breaker); 1 runtime failure
/// (journal or trace I/O); 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/CircuitBreaker.h"
#include "defacto/Core/EvaluationJournal.h"
#include "defacto/Core/ExplorationReport.h"
#include "defacto/Core/TransformStageCache.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Transforms/PassRegistry.h"
#include "defacto/Support/CommandLine.h"
#include "defacto/Support/MetricsSampler.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace defacto;

int main(int Argc, char **Argv) {
  cl::ArgList Args(Argc, Argv);
  BatchOptions Batch;
  Batch.NumThreads = Args.consumeUnsigned("--threads").value_or(2);
  std::string Strategy = Args.consumeValue("--strategy").value_or("guided");
  if (Args.consumeFlag("--exhaustive"))
    Strategy = "exhaustive";
  bool BothPlatforms = Args.consumeFlag("--both-platforms");
  bool Extended = Args.consumeFlag("--extended");
  bool Stats = Args.consumeFlag("--stats");
  std::string StatsOut = Args.consumeValue("--stats-out").value_or("");
  bool Explain = Args.consumeFlag("--explain");
  std::string MetricsOut = Args.consumeValue("--metrics-out").value_or("");
  std::string MetricsProm = Args.consumeValue("--metrics-prom").value_or("");
  unsigned MetricsIntervalMs =
      Args.consumeUnsigned("--metrics-interval-ms").value_or(250);
  std::string TraceOut = Args.consumeValue("--trace-out").value_or("");
  unsigned Repeat = Args.consumeUnsigned("--repeat").value_or(1);
  std::string Pipeline = Args.consumeValue("--pipeline").value_or("");
  std::vector<std::string> Names = Args.consumeList("--kernels");
  std::string JournalPath = Args.consumeValue("--journal").value_or("");
  bool Resume = Args.consumeFlag("--resume");
  double WatchdogSeconds = 0;
  if (std::optional<std::string> W = Args.consumeValue("--watchdog"))
    WatchdogSeconds = std::strtod(W->c_str(), nullptr);
  unsigned BreakerThreshold =
      Args.consumeUnsigned("--breaker-threshold").value_or(0);
  double BreakerCooldown = 30.0;
  if (std::optional<std::string> C = Args.consumeValue("--breaker-cooldown"))
    BreakerCooldown = std::strtod(C->c_str(), nullptr);
  std::string FastPathName = Args.consumeValue("--fast-path").value_or("off");
  FastPathMode FastPath;
  if (FastPathName == "off")
    FastPath = FastPathMode::Off;
  else if (FastPathName == "on")
    FastPath = FastPathMode::On;
  else if (FastPathName == "verify")
    FastPath = FastPathMode::Verify;
  else {
    std::fprintf(stderr, "--fast-path must be off, on, or verify (got '%s')\n",
                 FastPathName.c_str());
    return 2;
  }

  if (!Args.empty()) {
    std::fprintf(stderr,
                 "unknown argument '%s'\n"
                 "usage: explore_batch [--threads N] [--strategy NAME] "
                 "[--exhaustive] [--both-platforms] [--extended] "
                 "[--kernels a,b,...] [--repeat N] [--pipeline=p1,p2,...] "
                 "[--trace-out=PATH] [--stats] [--stats-out=PATH] "
                 "[--explain] [--journal=PATH] [--resume] "
                 "[--watchdog=SECONDS] [--breaker-threshold=N] "
                 "[--breaker-cooldown=SECONDS] [--fast-path=off|on|verify] "
                 "[--metrics-out=PATH] [--metrics-interval-ms=N] "
                 "[--metrics-prom=PATH]\n",
                 Args.rest().front().c_str());
    return 2;
  }
  if (Resume && JournalPath.empty()) {
    std::fprintf(stderr, "--resume requires --journal=PATH\n");
    return 2;
  }
  if (WatchdogSeconds < 0) {
    std::fprintf(stderr, "--watchdog must be non-negative\n");
    return 2;
  }
  if (!StrategyRegistry::instance().contains(Strategy)) {
    std::fprintf(stderr, "unknown strategy '%s'; registered strategies:\n%s",
                 Strategy.c_str(),
                 StrategyRegistry::instance().describe().c_str());
    return 2;
  }
  if (!Pipeline.empty()) {
    if (Expected<std::vector<std::string>> Parsed =
            parsePipelineText(Pipeline);
        !Parsed) {
      std::fprintf(stderr, "bad --pipeline: %s\n",
                   Parsed.status().message().c_str());
      return 2;
    }
  }

  bool Metrics = !MetricsOut.empty() || !MetricsProm.empty();
  // --explain renders the per-pass pipeline timing table, which needs the
  // phase timers recording.
  if (Stats || !StatsOut.empty() || Metrics || Explain)
    StatRegistry::instance().setEnabled(true);
  if (!TraceOut.empty()) {
    Batch.Trace = std::make_shared<TraceRecorder>();
    Batch.Trace->setEnabled(true);
  }
  if (BreakerThreshold > 0) {
    CircuitBreakerOptions BreakerOpts;
    BreakerOpts.FailureThreshold = BreakerThreshold;
    BreakerOpts.CooldownSeconds = BreakerCooldown;
    Batch.Breakers = std::make_shared<CircuitBreakerRegistry>(BreakerOpts);
  }
  unsigned ResumedEvals = 0;
  size_t ResumedJobs = 0;
  if (!JournalPath.empty()) {
    Batch.Journal = std::make_shared<EvaluationJournal>(JournalPath);
    if (Resume) {
      Expected<EvaluationJournal::Contents> Loaded =
          EvaluationJournal::load(JournalPath);
      if (!Loaded) {
        std::fprintf(stderr, "cannot resume: %s\n",
                     Loaded.status().toString().c_str());
        return 1;
      }
      if (Loaded->SkippedLines > 0)
        std::fprintf(stderr,
                     "journal %s: skipped %u corrupt line(s) "
                     "(torn write from the interrupted run)\n",
                     JournalPath.c_str(), Loaded->SkippedLines);
      Batch.Journal->adopt(*Loaded);
      if (!Batch.Cache)
        Batch.Cache = std::make_shared<EstimateCache>();
      ResumedEvals = Batch.Journal->replayInto(*Batch.Cache);
      ResumedJobs = Batch.Journal->numJobs();
    }
  }

  if (Names.empty()) {
    for (const KernelSpec &Spec : paperKernels())
      Names.push_back(Spec.Name);
    if (Extended)
      for (const KernelSpec &Spec : extendedKernels())
        Names.push_back(Spec.Name);
  }

  std::vector<TargetPlatform> Platforms{TargetPlatform::wildstarPipelined()};
  if (BothPlatforms)
    Platforms.push_back(TargetPlatform::wildstarNonPipelined());

  // One stage cache across every job: kernels repeated across platforms
  // and --repeat rounds share their memoized pipeline prefixes the same
  // way they share the estimate cache.
  std::shared_ptr<TransformStageCache> StageCache;
  if (FastPath != FastPathMode::Off)
    StageCache = std::make_shared<TransformStageCache>();

  if (Metrics && !Batch.Pool && Batch.NumThreads > 1)
    Batch.Pool = std::make_shared<ThreadPool>(Batch.NumThreads);

  BatchExplorer Engine(Batch);
  for (unsigned Round = 0; Round != std::max(1u, Repeat); ++Round)
    for (const std::string &Name : Names) {
      if (!findKernelSpec(Name)) {
        std::fprintf(stderr, "unknown kernel '%s'\n", Name.c_str());
        return 2;
      }
      for (const TargetPlatform &Platform : Platforms) {
        ExplorerOptions Opts;
        Opts.Platform = Platform;
        Opts.WatchdogSeconds = WatchdogSeconds;
        Opts.FastPath = FastPath;
        Opts.StageCache = StageCache;
        Opts.BaseTransforms.Pipeline = Pipeline;
        std::string Label = Name + " @ " + Platform.Name;
        if (Round > 0)
          Label += " (repeat)";
        Engine.addJob(
            BatchJob(Label, buildKernel(Name), std::move(Opts), Strategy));
      }
    }

  unsigned NumJobs = Engine.numJobs();
  std::printf("exploring %u job(s) on %u thread(s), %s search\n\n", NumJobs,
              Batch.NumThreads, Strategy.c_str());
  if (Resume)
    std::printf("resumed from journal %s: %u evaluation(s) replayed, "
                "%zu finished job(s) on record\n\n",
                JournalPath.c_str(), ResumedEvals, ResumedJobs);

  std::unique_ptr<MetricsSampler> Sampler;
  if (Metrics) {
    MetricsSamplerOptions SamplerOpts;
    SamplerOpts.IntervalSeconds = MetricsIntervalMs / 1000.0;
    SamplerOpts.JsonlPath = MetricsOut;
    SamplerOpts.PromPath = MetricsProm;
    Sampler = std::make_unique<MetricsSampler>(std::move(SamplerOpts));
    Sampler->setGauge("jobs_total", [&Engine] {
      return static_cast<double>(Engine.jobsQueued());
    });
    Sampler->setGauge("jobs_done", [&Engine] {
      return static_cast<double>(Engine.jobsCompleted());
    });
    Sampler->setGauge("in_flight_evals", [] {
      return static_cast<double>(EvaluationService::inFlightEvaluations());
    });
    Sampler->setGauge("cache_designs", [&Engine] {
      return static_cast<double>(Engine.estimateCache()->size());
    });
    if (Batch.Pool)
      Sampler->setGauge("queue_depth", [Pool = Batch.Pool] {
        return static_cast<double>(Pool->queueDepth());
      });
    if (Batch.Breakers)
      Sampler->setGauge("breakers_open", [Breakers = Batch.Breakers] {
        double Open = 0;
        for (const auto &[Key, Snap] : Breakers->snapshotAll())
          if (Snap.Current != CircuitBreakerRegistry::State::Closed)
            ++Open;
        return Open;
      });
    Sampler->start();
  }

  std::vector<BatchResult> Results = Engine.runAll();

  if (Sampler) {
    // Final sample after the last job: totals now exactly match the
    // end-of-run registry and cache stats below.
    Sampler->stop();
    if (Status MetricsIo = Sampler->ioStatus(); !MetricsIo.isOk()) {
      std::fprintf(stderr, "metrics output failed: %s\n",
                   MetricsIo.toString().c_str());
      return 1;
    }
    std::printf("metrics: %llu sample(s)%s%s%s%s\n\n",
                static_cast<unsigned long long>(Sampler->samples()),
                MetricsOut.empty() ? "" : " -> ",
                MetricsOut.c_str(),
                MetricsProm.empty() ? "" : ", prom -> ",
                MetricsProm.c_str());
  }

  Table Out({"job", "strategy", "selected", "cycles", "slices", "speedup",
             "evals", "searched", "flags"});
  for (const BatchResult &R : Results) {
    const ExplorationResult &E = R.Result;
    std::string Flags;
    if (!E.SelectedFits)
      Flags += "no-fit ";
    if (E.Degraded)
      Flags += "degraded";
    if (E.DroppedFailures > 0)
      Flags += " (+" + std::to_string(E.DroppedFailures) +
               " failures dropped)";
    std::string Selected = E.SelectedPoint.isUnrollOnly()
                               ? unrollVectorToString(E.Selected)
                               : E.SelectedPoint.toString();
    Out.addRow({R.Name, E.Strategy, Selected,
                formatWithCommas(static_cast<int64_t>(
                    E.SelectedEstimate.Cycles)),
                formatDouble(E.SelectedEstimate.Slices, 0),
                formatDouble(E.speedup(), 2) + "x",
                std::to_string(E.EvaluationsUsed),
                formatDouble(100.0 * E.fractionSearched(), 1) + "%",
                Flags});
  }
  std::printf("%s\n", Out.toString().c_str());

  EstimateCache::Stats CacheStats = Engine.estimateCache()->stats();
  std::printf("shared cache: %llu lookups, %llu hits (%.1f%% hit rate), "
              "%llu negative, %llu waits, %zu designs cached\n",
              static_cast<unsigned long long>(CacheStats.Lookups),
              static_cast<unsigned long long>(CacheStats.Hits),
              100.0 * CacheStats.hitRate(),
              static_cast<unsigned long long>(CacheStats.NegativeHits),
              static_cast<unsigned long long>(CacheStats.Waits),
              Engine.estimateCache()->size());

  if (StageCache) {
    TransformStageCache::Stats StageStats = StageCache->stats();
    std::printf("stage cache:  %llu lookups, %llu hits (%.1f%% hit rate), "
                "%llu waits, %llu evicted, %zu stage(s) resident\n",
                static_cast<unsigned long long>(StageStats.Lookups),
                static_cast<unsigned long long>(StageStats.Hits),
                100.0 * StageStats.hitRate(),
                static_cast<unsigned long long>(StageStats.Waits),
                static_cast<unsigned long long>(StageStats.Evictions),
                StageCache->size());
  }

  if (Explain) {
    ReportOptions Report;
    Report.ShowPassTimings = true;
    for (const BatchResult &R : Results)
      std::printf("\n%s",
                  renderExplorationReport(R.Result, R.Name, Report).c_str());
  }

  if (Stats) {
    std::printf("\n%s", StatRegistry::instance().toText().c_str());
    std::printf("%s", TimerGroup::global().toText().c_str());
  }

  if (!StatsOut.empty()) {
    if (!cl::writeStatsFile(StatsOut))
      return 1;
    std::printf("wrote stats to %s\n", StatsOut.c_str());
  }

  if (!TraceOut.empty()) {
    std::ofstream TraceFile(TraceOut);
    if (!TraceFile) {
      std::fprintf(stderr, "failed to open trace output '%s'\n",
                   TraceOut.c_str());
      return 1;
    }
    TraceFile << Batch.Trace->toChromeTrace();
    std::printf("wrote %zu trace events to %s (load in chrome://tracing "
                "or ui.perfetto.dev)\n",
                Batch.Trace->eventCount(), TraceOut.c_str());
  }

  if (Batch.Journal) {
    // One final flush so a run with zero new evaluations (a full resume)
    // still leaves a complete journal behind.
    if (Status Flushed = Batch.Journal->flush(); !Flushed.isOk()) {
      std::fprintf(stderr, "journal flush failed: %s\n",
                   Flushed.toString().c_str());
      return 1;
    }
    std::printf("journal: %s (%zu evaluation(s), %zu job record(s))\n",
                Batch.Journal->path().c_str(),
                Batch.Journal->numEvaluations(), Batch.Journal->numJobs());
  }

  bool AnyDegraded = false;
  for (const BatchResult &R : Results)
    AnyDegraded |= R.Result.Degraded || !R.Result.SelectedFits;
  // 0: every job converged healthy. 3: the batch completed but degraded
  // (faults, deadline/budget stops, open breakers, or a no-fit device) —
  // results are usable but a supervisor should look. 1/2 above: runtime
  // and usage failures.
  return AnyDegraded ? 3 : 0;
}
