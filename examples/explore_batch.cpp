//===- explore_batch.cpp - Multi-kernel DSE driver ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Explores many kernels concurrently on one worker pool with one shared
/// estimate cache — the deployment shape of §2.4's application class,
/// where a whole image-processing pipeline of kernels targets one board:
///
///   explore_batch [--threads N] [--strategy NAME] [--exhaustive]
///                 [--both-platforms] [--extended] [--kernels fir,mm,...]
///                 [--repeat N] [--trace-out=PATH] [--stats] [--explain]
///
/// --strategy selects any StrategyRegistry search ("guided",
/// "exhaustive", "random", "hillclimb", "portfolio", or one a caller
/// registered); an unknown name lists the registry and exits.
/// --exhaustive is the historical shorthand for --strategy exhaustive.
///
/// Prints one row per job (strategy, selected design, speedup,
/// evaluations) plus the shared cache's hit statistics. --repeat queues
/// each job twice to demonstrate cross-job cache reuse: the second copy
/// costs zero estimator calls. --trace-out writes a Chrome trace_event
/// file of every search decision (one track per job; load in
/// chrome://tracing or Perfetto), --stats prints the counter registry and
/// phase timings, and --explain renders the full exploration report per
/// job (per-strategy sections for portfolio runs).
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/ExplorationReport.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/CommandLine.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <cstdio>
#include <fstream>

using namespace defacto;

int main(int Argc, char **Argv) {
  cl::ArgList Args(Argc, Argv);
  BatchOptions Batch;
  Batch.NumThreads = Args.consumeUnsigned("--threads").value_or(2);
  std::string Strategy = Args.consumeValue("--strategy").value_or("guided");
  if (Args.consumeFlag("--exhaustive"))
    Strategy = "exhaustive";
  bool BothPlatforms = Args.consumeFlag("--both-platforms");
  bool Extended = Args.consumeFlag("--extended");
  bool Stats = Args.consumeFlag("--stats");
  bool Explain = Args.consumeFlag("--explain");
  std::string TraceOut = Args.consumeValue("--trace-out").value_or("");
  unsigned Repeat = Args.consumeUnsigned("--repeat").value_or(1);
  std::vector<std::string> Names = Args.consumeList("--kernels");

  if (!Args.empty()) {
    std::fprintf(stderr,
                 "unknown argument '%s'\n"
                 "usage: explore_batch [--threads N] [--strategy NAME] "
                 "[--exhaustive] [--both-platforms] [--extended] "
                 "[--kernels a,b,...] [--repeat N] [--trace-out=PATH] "
                 "[--stats] [--explain]\n",
                 Args.rest().front().c_str());
    return 2;
  }
  if (!StrategyRegistry::instance().contains(Strategy)) {
    std::fprintf(stderr, "unknown strategy '%s'; registered strategies:\n%s",
                 Strategy.c_str(),
                 StrategyRegistry::instance().describe().c_str());
    return 2;
  }

  if (Stats)
    StatRegistry::instance().setEnabled(true);
  if (!TraceOut.empty()) {
    Batch.Trace = std::make_shared<TraceRecorder>();
    Batch.Trace->setEnabled(true);
  }

  if (Names.empty()) {
    for (const KernelSpec &Spec : paperKernels())
      Names.push_back(Spec.Name);
    if (Extended)
      for (const KernelSpec &Spec : extendedKernels())
        Names.push_back(Spec.Name);
  }

  std::vector<TargetPlatform> Platforms{TargetPlatform::wildstarPipelined()};
  if (BothPlatforms)
    Platforms.push_back(TargetPlatform::wildstarNonPipelined());

  BatchExplorer Engine(Batch);
  for (unsigned Round = 0; Round != std::max(1u, Repeat); ++Round)
    for (const std::string &Name : Names) {
      if (!findKernelSpec(Name)) {
        std::fprintf(stderr, "unknown kernel '%s'\n", Name.c_str());
        return 2;
      }
      for (const TargetPlatform &Platform : Platforms) {
        ExplorerOptions Opts;
        Opts.Platform = Platform;
        std::string Label = Name + " @ " + Platform.Name;
        if (Round > 0)
          Label += " (repeat)";
        Engine.addJob(
            BatchJob(Label, buildKernel(Name), std::move(Opts), Strategy));
      }
    }

  unsigned NumJobs = Engine.numJobs();
  std::printf("exploring %u job(s) on %u thread(s), %s search\n\n", NumJobs,
              Batch.NumThreads, Strategy.c_str());

  std::vector<BatchResult> Results = Engine.runAll();

  Table Out({"job", "strategy", "selected", "cycles", "slices", "speedup",
             "evals", "searched", "flags"});
  for (const BatchResult &R : Results) {
    const ExplorationResult &E = R.Result;
    std::string Flags;
    if (!E.SelectedFits)
      Flags += "no-fit ";
    if (E.Degraded)
      Flags += "degraded";
    Out.addRow({R.Name, E.Strategy, unrollVectorToString(E.Selected),
                formatWithCommas(static_cast<int64_t>(
                    E.SelectedEstimate.Cycles)),
                formatDouble(E.SelectedEstimate.Slices, 0),
                formatDouble(E.speedup(), 2) + "x",
                std::to_string(E.EvaluationsUsed),
                formatDouble(100.0 * E.fractionSearched(), 1) + "%",
                Flags});
  }
  std::printf("%s\n", Out.toString().c_str());

  EstimateCache::Stats CacheStats = Engine.estimateCache()->stats();
  std::printf("shared cache: %llu lookups, %llu hits (%.1f%% hit rate), "
              "%llu negative, %llu waits, %zu designs cached\n",
              static_cast<unsigned long long>(CacheStats.Lookups),
              static_cast<unsigned long long>(CacheStats.Hits),
              100.0 * CacheStats.hitRate(),
              static_cast<unsigned long long>(CacheStats.NegativeHits),
              static_cast<unsigned long long>(CacheStats.Waits),
              Engine.estimateCache()->size());

  if (Explain)
    for (const BatchResult &R : Results)
      std::printf("\n%s", renderExplorationReport(R.Result, R.Name).c_str());

  if (Stats) {
    std::printf("\n%s", StatRegistry::instance().toText().c_str());
    std::printf("%s", TimerGroup::global().toText().c_str());
  }

  if (!TraceOut.empty()) {
    std::ofstream TraceFile(TraceOut);
    if (!TraceFile) {
      std::fprintf(stderr, "failed to open trace output '%s'\n",
                   TraceOut.c_str());
      return 1;
    }
    TraceFile << Batch.Trace->toChromeTrace();
    std::printf("wrote %zu trace events to %s (load in chrome://tracing "
                "or ui.perfetto.dev)\n",
                Batch.Trace->eventCount(), TraceOut.c_str());
  }
  return 0;
}
