//===- explore_batch.cpp - Multi-kernel DSE driver ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Explores many kernels concurrently on one worker pool with one shared
/// estimate cache — the deployment shape of §2.4's application class,
/// where a whole image-processing pipeline of kernels targets one board:
///
///   explore_batch [--threads N] [--exhaustive] [--both-platforms]
///                 [--extended] [--kernels fir,mm,...] [--repeat N]
///                 [--trace-out=PATH] [--stats] [--explain]
///
/// Prints one row per job (selected design, speedup, evaluations) plus
/// the shared cache's hit statistics. --repeat queues each job twice to
/// demonstrate cross-job cache reuse: the second copy costs zero
/// estimator calls. --trace-out writes a Chrome trace_event file of
/// every search decision (one track per job; load in chrome://tracing or
/// Perfetto), --stats prints the counter registry and phase timings, and
/// --explain renders the full exploration report per job.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/Core/ExplorationReport.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Stats.h"
#include "defacto/Support/Table.h"
#include "defacto/Support/Timer.h"
#include "defacto/Support/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace defacto;

int main(int Argc, char **Argv) {
  BatchOptions Batch;
  Batch.NumThreads = 2;
  bool Exhaustive = false;
  bool BothPlatforms = false;
  bool Extended = false;
  bool Stats = false;
  bool Explain = false;
  std::string TraceOut;
  unsigned Repeat = 1;
  std::vector<std::string> Names;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc) {
      Batch.NumThreads = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--exhaustive") == 0) {
      Exhaustive = true;
    } else if (std::strcmp(Argv[I], "--both-platforms") == 0) {
      BothPlatforms = true;
    } else if (std::strcmp(Argv[I], "--extended") == 0) {
      Extended = true;
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Stats = true;
    } else if (std::strcmp(Argv[I], "--explain") == 0) {
      Explain = true;
    } else if (std::strncmp(Argv[I], "--trace-out=", 12) == 0) {
      TraceOut = Argv[I] + 12;
    } else if (std::strcmp(Argv[I], "--repeat") == 0 && I + 1 < Argc) {
      Repeat = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--kernels") == 0 && I + 1 < Argc) {
      std::stringstream SS(Argv[++I]);
      std::string Name;
      while (std::getline(SS, Name, ','))
        if (!Name.empty())
          Names.push_back(Name);
    } else {
      std::fprintf(stderr,
                   "usage: explore_batch [--threads N] [--exhaustive] "
                   "[--both-platforms] [--extended] [--kernels a,b,...] "
                   "[--repeat N] [--trace-out=PATH] [--stats] "
                   "[--explain]\n");
      return 2;
    }
  }

  if (Stats)
    StatRegistry::instance().setEnabled(true);
  if (!TraceOut.empty()) {
    Batch.Trace = std::make_shared<TraceRecorder>();
    Batch.Trace->setEnabled(true);
  }

  if (Names.empty()) {
    for (const KernelSpec &Spec : paperKernels())
      Names.push_back(Spec.Name);
    if (Extended)
      for (const KernelSpec &Spec : extendedKernels())
        Names.push_back(Spec.Name);
  }

  std::vector<TargetPlatform> Platforms{TargetPlatform::wildstarPipelined()};
  if (BothPlatforms)
    Platforms.push_back(TargetPlatform::wildstarNonPipelined());

  BatchExplorer Engine(Batch);
  for (unsigned Round = 0; Round != std::max(1u, Repeat); ++Round)
    for (const std::string &Name : Names) {
      if (!findKernelSpec(Name)) {
        std::fprintf(stderr, "unknown kernel '%s'\n", Name.c_str());
        return 2;
      }
      for (const TargetPlatform &Platform : Platforms) {
        ExplorerOptions Opts;
        Opts.Platform = Platform;
        std::string Label = Name + " @ " + Platform.Name;
        if (Round > 0)
          Label += " (repeat)";
        Engine.addJob(BatchJob(Label, buildKernel(Name), std::move(Opts),
                               Exhaustive ? BatchJob::Mode::Exhaustive
                                          : BatchJob::Mode::Guided));
      }
    }

  unsigned NumJobs = Engine.numJobs();
  std::printf("exploring %u job(s) on %u thread(s), %s search\n\n", NumJobs,
              Batch.NumThreads, Exhaustive ? "exhaustive" : "guided");

  std::vector<BatchResult> Results = Engine.runAll();

  Table Out({"job", "selected", "cycles", "slices", "speedup", "evals",
             "searched", "flags"});
  for (const BatchResult &R : Results) {
    const ExplorationResult &E = R.Result;
    std::string Flags;
    if (!E.SelectedFits)
      Flags += "no-fit ";
    if (E.Degraded)
      Flags += "degraded";
    Out.addRow({R.Name, unrollVectorToString(E.Selected),
                formatWithCommas(static_cast<int64_t>(
                    E.SelectedEstimate.Cycles)),
                formatDouble(E.SelectedEstimate.Slices, 0),
                formatDouble(E.speedup(), 2) + "x",
                std::to_string(E.EvaluationsUsed),
                formatDouble(100.0 * E.fractionSearched(), 1) + "%",
                Flags});
  }
  std::printf("%s\n", Out.toString().c_str());

  EstimateCache::Stats CacheStats = Engine.estimateCache()->stats();
  std::printf("shared cache: %llu lookups, %llu hits (%.1f%% hit rate), "
              "%llu negative, %llu waits, %zu designs cached\n",
              static_cast<unsigned long long>(CacheStats.Lookups),
              static_cast<unsigned long long>(CacheStats.Hits),
              100.0 * CacheStats.hitRate(),
              static_cast<unsigned long long>(CacheStats.NegativeHits),
              static_cast<unsigned long long>(CacheStats.Waits),
              Engine.estimateCache()->size());

  if (Explain)
    for (const BatchResult &R : Results)
      std::printf("\n%s", renderExplorationReport(R.Result, R.Name).c_str());

  if (Stats) {
    std::printf("\n%s", StatRegistry::instance().toText().c_str());
    std::printf("%s", TimerGroup::global().toText().c_str());
  }

  if (!TraceOut.empty()) {
    std::ofstream Out(TraceOut);
    if (!Out) {
      std::fprintf(stderr, "failed to open trace output '%s'\n",
                   TraceOut.c_str());
      return 1;
    }
    Out << Batch.Trace->toChromeTrace();
    std::printf("wrote %zu trace events to %s (load in chrome://tracing "
                "or ui.perfetto.dev)\n",
                Batch.Trace->eventCount(), TraceOut.c_str());
  }
  return 0;
}
