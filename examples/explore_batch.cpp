//===- explore_batch.cpp - Multi-kernel DSE driver ------------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Explores many kernels concurrently on one worker pool with one shared
/// estimate cache — the deployment shape of §2.4's application class,
/// where a whole image-processing pipeline of kernels targets one board:
///
///   explore_batch [--threads N] [--exhaustive] [--both-platforms]
///                 [--extended] [--kernels fir,mm,...] [--repeat N]
///
/// Prints one row per job (selected design, speedup, evaluations) plus
/// the shared cache's hit statistics. --repeat queues each job twice to
/// demonstrate cross-job cache reuse: the second copy costs zero
/// estimator calls.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/BatchExplorer.h"
#include "defacto/IR/IRUtils.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Support/Table.h"

#include <cstdio>
#include <cstring>
#include <sstream>

using namespace defacto;

int main(int Argc, char **Argv) {
  BatchOptions Batch;
  Batch.NumThreads = 2;
  bool Exhaustive = false;
  bool BothPlatforms = false;
  bool Extended = false;
  unsigned Repeat = 1;
  std::vector<std::string> Names;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc) {
      Batch.NumThreads = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--exhaustive") == 0) {
      Exhaustive = true;
    } else if (std::strcmp(Argv[I], "--both-platforms") == 0) {
      BothPlatforms = true;
    } else if (std::strcmp(Argv[I], "--extended") == 0) {
      Extended = true;
    } else if (std::strcmp(Argv[I], "--repeat") == 0 && I + 1 < Argc) {
      Repeat = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--kernels") == 0 && I + 1 < Argc) {
      std::stringstream SS(Argv[++I]);
      std::string Name;
      while (std::getline(SS, Name, ','))
        if (!Name.empty())
          Names.push_back(Name);
    } else {
      std::fprintf(stderr,
                   "usage: explore_batch [--threads N] [--exhaustive] "
                   "[--both-platforms] [--extended] [--kernels a,b,...] "
                   "[--repeat N]\n");
      return 2;
    }
  }

  if (Names.empty()) {
    for (const KernelSpec &Spec : paperKernels())
      Names.push_back(Spec.Name);
    if (Extended)
      for (const KernelSpec &Spec : extendedKernels())
        Names.push_back(Spec.Name);
  }

  std::vector<TargetPlatform> Platforms{TargetPlatform::wildstarPipelined()};
  if (BothPlatforms)
    Platforms.push_back(TargetPlatform::wildstarNonPipelined());

  BatchExplorer Engine(Batch);
  for (unsigned Round = 0; Round != std::max(1u, Repeat); ++Round)
    for (const std::string &Name : Names) {
      if (!findKernelSpec(Name)) {
        std::fprintf(stderr, "unknown kernel '%s'\n", Name.c_str());
        return 2;
      }
      for (const TargetPlatform &Platform : Platforms) {
        ExplorerOptions Opts;
        Opts.Platform = Platform;
        std::string Label = Name + " @ " + Platform.Name;
        if (Round > 0)
          Label += " (repeat)";
        Engine.addJob(BatchJob(Label, buildKernel(Name), std::move(Opts),
                               Exhaustive ? BatchJob::Mode::Exhaustive
                                          : BatchJob::Mode::Guided));
      }
    }

  unsigned NumJobs = Engine.numJobs();
  std::printf("exploring %u job(s) on %u thread(s), %s search\n\n", NumJobs,
              Batch.NumThreads, Exhaustive ? "exhaustive" : "guided");

  std::vector<BatchResult> Results = Engine.runAll();

  Table Out({"job", "selected", "cycles", "slices", "speedup", "evals",
             "searched", "flags"});
  for (const BatchResult &R : Results) {
    const ExplorationResult &E = R.Result;
    std::string Flags;
    if (!E.SelectedFits)
      Flags += "no-fit ";
    if (E.Degraded)
      Flags += "degraded";
    Out.addRow({R.Name, unrollVectorToString(E.Selected),
                formatWithCommas(static_cast<int64_t>(
                    E.SelectedEstimate.Cycles)),
                formatDouble(E.SelectedEstimate.Slices, 0),
                formatDouble(E.speedup(), 2) + "x",
                std::to_string(E.EvaluationsUsed),
                formatDouble(100.0 * E.fractionSearched(), 1) + "%",
                Flags});
  }
  std::printf("%s\n", Out.toString().c_str());

  EstimateCache::Stats Stats = Engine.estimateCache()->stats();
  std::printf("shared cache: %llu lookups, %llu hits (%.1f%% hit rate), "
              "%llu negative, %llu waits, %zu designs cached\n",
              static_cast<unsigned long long>(Stats.Lookups),
              static_cast<unsigned long long>(Stats.Hits),
              100.0 * Stats.hitRate(),
              static_cast<unsigned long long>(Stats.NegativeHits),
              static_cast<unsigned long long>(Stats.Waits),
              Engine.estimateCache()->size());
  return 0;
}
