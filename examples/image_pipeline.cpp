//===- image_pipeline.cpp - Edge detection accelerator scenario -----------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Domain scenario: an image-processing pipeline (the application class
/// the paper's introduction motivates). Two stages — Jacobi smoothing
/// followed by Sobel edge detection — share one FPGA: the system mapper
/// negotiates a slice budget per stage (the paper's §3 criterion 3:
/// smaller designs leave room for other nests), the compiler
/// materializes each selected design, and the back end emits one
/// behavioral VHDL file per stage, exactly the hand-off DEFACTO makes to
/// commercial synthesis.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/SystemMapper.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/VHDL/VhdlEmitter.h"

#include <algorithm>
#include <cstdio>

using namespace defacto;

int main() {
  ExplorerOptions Opts;
  Opts.Platform = TargetPlatform::wildstarPipelined();

  std::vector<Kernel> Stages;
  Stages.push_back(buildKernel("JAC"));
  Stages.push_back(buildKernel("SOBEL"));
  std::vector<const Kernel *> StagePtrs{&Stages[0], &Stages[1]};

  SystemMapping Mapping = mapKernelsToDevice(StagePtrs, Opts);
  std::printf("device: %.0f slices; mapping took %u budget "
              "negotiation round(s)\n\n",
              Opts.Platform.CapacitySlices, Mapping.Rounds);

  for (const MappedKernel &MK : Mapping.Kernels) {
    const ExplorationResult &R = MK.Result;
    std::printf("stage %-6s selected %-8s %6llu cycles  %5.0f slices  "
                "balance %.3f  speedup %.2fx  (budget %.0f, searched "
                "%zu designs)\n",
                MK.Name.c_str(), unrollVectorToString(R.Selected).c_str(),
                static_cast<unsigned long long>(R.SelectedEstimate.Cycles),
                R.SelectedEstimate.Slices, R.SelectedEstimate.Balance,
                R.speedup(), MK.BudgetSlices, R.Visited.size());

    const Kernel *Source = nullptr;
    for (const Kernel &K : Stages)
      if (K.name() == MK.Name)
        Source = &K;

    TransformOptions TO;
    TO.Unroll = R.Selected;
    TO.Layout.NumMemories = Opts.Platform.NumMemories;
    TransformResult Design = applyPipeline(*Source, TO);

    if (simulate(*Source, 3) != simulate(Design.K, 3)) {
      std::fprintf(stderr, "BUG: %s diverges after transformation\n",
                   MK.Name.c_str());
      return 1;
    }

    VhdlOptions VO;
    VO.EntityName = "edge_pipeline_" + MK.Name;
    std::string Vhdl = emitVhdl(Design.K, VO);
    std::string Problem = checkVhdlStructure(Vhdl);
    if (!Problem.empty()) {
      std::fprintf(stderr, "BUG: malformed VHDL for %s: %s\n",
                   MK.Name.c_str(), Problem.c_str());
      return 1;
    }

    // A self-checking simulation model with golden values from the
    // functional simulator: what a designer runs in an HDL simulator
    // before committing to synthesis.
    MemoryImage Inputs(Design.K, 3);
    MemoryImage Golden = Inputs;
    runKernel(Design.K, Golden);
    std::string Tb = emitVhdlTestbench(Design.K, Inputs, Golden);
    if (!checkVhdlStructure(Tb).empty()) {
      std::fprintf(stderr, "BUG: malformed testbench for %s\n",
                   MK.Name.c_str());
      return 1;
    }
    std::printf("  emitted %zu lines of behavioral VHDL (entity "
                "edge_pipeline_%s) + %zu-line self-checking testbench\n",
                static_cast<size_t>(
                    std::count(Vhdl.begin(), Vhdl.end(), '\n')),
                MK.Name.c_str(),
                static_cast<size_t>(std::count(Tb.begin(), Tb.end(),
                                               '\n')));
  }

  std::printf("\npipeline total: %.0f of %.0f slices (%.0f%% of the "
              "device), %llu cycles per frame end to end — %s\n",
              Mapping.TotalSlices, Opts.Platform.CapacitySlices,
              100.0 * Mapping.TotalSlices / Opts.Platform.CapacitySlices,
              static_cast<unsigned long long>(Mapping.TotalCycles),
              Mapping.Fits ? "both stages fit together" : "DOES NOT FIT");
  return Mapping.Fits ? 0 : 1;
}
