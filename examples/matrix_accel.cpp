//===- matrix_accel.cpp - Matrix multiply accelerator scenario ------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Domain scenario: a dense matrix-multiply accelerator, evaluated under
/// both memory systems the paper studies. Shows the board abstraction
/// (pipelined vs WildStar non-pipelined latencies), the balance metric
/// driving different selections on each, and the §6.4-style validation
/// of the behavioral estimate against the implementation model.
///
//===----------------------------------------------------------------------===//

#include "defacto/Core/Explorer.h"
#include "defacto/HLS/PlaceRoute.h"
#include "defacto/Kernels/Kernels.h"

#include <cstdio>

using namespace defacto;

int main() {
  Kernel MM = buildKernel("MM");

  for (const TargetPlatform &Board :
       {TargetPlatform::wildstarPipelined(),
        TargetPlatform::wildstarNonPipelined()}) {
    ExplorerOptions Opts;
    Opts.Platform = Board;
    DesignSpaceExplorer Explorer(MM, Opts);
    ExplorationResult R = Explorer.run();

    std::printf("== %s ==\n", Board.Name.c_str());
    std::printf("memory: %u banks, read %u / write %u cycles%s\n",
                Board.NumMemories, Board.Timing.ReadLatencyCycles,
                Board.Timing.WriteLatencyCycles,
                Board.Timing.Pipelined ? " (pipelined)" : "");
    std::printf("search:\n%s", R.Trace.c_str());
    std::printf("selected %s: %llu cycles, %.0f slices, %u registers, "
                "speedup %.2fx\n",
                unrollVectorToString(R.Selected).c_str(),
                static_cast<unsigned long long>(R.SelectedEstimate.Cycles),
                R.SelectedEstimate.Slices, R.SelectedEstimate.Registers,
                R.speedup());

    // Datapath inventory: what binding allocated.
    std::printf("datapath:");
    for (const auto &[Shape, N] : R.SelectedEstimate.Units)
      if (N > 0 && Shape.first != OpClass::Wire)
        std::printf(" %ux %s%u", N, opClassName(Shape.first),
                    Shape.second);
    std::printf("\n");

    // Validate the estimate through the implementation model (§6.4).
    ImplementationResult Impl = placeAndRoute(R.SelectedEstimate, Board);
    std::printf("implementation: %llu cycles (unchanged), clock %.1f ns "
                "(target %.0f ns, %s), %.0f slices after P&R\n\n",
                static_cast<unsigned long long>(Impl.Cycles),
                Impl.AchievedClockNs, Board.ClockPeriodNs,
                Impl.MeetsTargetClock ? "met" : "MISSED",
                Impl.Slices);
  }
  return 0;
}
