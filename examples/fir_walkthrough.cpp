//===- fir_walkthrough.cpp - Figure 1, stage by stage ---------------------===//
//
// Part of the DEFACTO-DSE project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's Figure 1 on the FIR filter, printing the code
/// after each transformation:
///
///   (a) the original C kernel,
///   (b) after unroll-and-jam by (2,2),
///   (c) after scalar replacement — D registers, rotating C chains, the
///       shared S_0 load, and the `if (j == 0)` chain-load guard,
///   (d) the final code after loop peeling and custom data layout —
///       renamed memories S0/S1, C0/C1, D0/D1 with bank-local
///       subscripts, matching Figure 1(d).
///
/// Each stage is checked against the original with the functional
/// simulator.
///
//===----------------------------------------------------------------------===//

#include "defacto/IR/IRPrinter.h"
#include "defacto/Kernels/Kernels.h"
#include "defacto/Sim/Interpreter.h"
#include "defacto/Transforms/DataLayout.h"
#include "defacto/Transforms/LoopPeeling.h"
#include "defacto/Transforms/Normalize.h"
#include "defacto/Transforms/ScalarReplacement.h"
#include "defacto/Transforms/UnrollAndJam.h"

#include <cstdio>

using namespace defacto;

namespace {

bool check(const Kernel &Original, const Kernel &Transformed,
           const char *Stage) {
  if (simulate(Original, 1729) == simulate(Transformed, 1729)) {
    std::printf("  [functional check after %s: OK]\n\n", Stage);
    return true;
  }
  std::fprintf(stderr, "BUG: %s changed results\n", Stage);
  return false;
}

} // namespace

int main() {
  Kernel Original = buildKernel("FIR");
  std::printf("(a) original code\n%s\n",
              printKernel(Original).c_str());

  Kernel K = Original.clone();
  normalizeLoops(K);
  if (!unrollAndJam(K, {2, 2})) {
    std::fprintf(stderr, "unroll failed\n");
    return 1;
  }
  normalizeLoops(K);
  std::printf("(b) after unrolling j and i by factor 2 and jamming\n%s",
              printKernel(K).c_str());
  if (!check(Original, K, "unroll-and-jam"))
    return 1;

  ScalarReplacementStats SR = scalarReplace(K);
  std::printf("(c) after scalar replacement: %u registers, %u rotating "
              "chains, %u loads and %u stores removed from the steady "
              "state\n%s",
              SR.RegistersAllocated, SR.ChainsCreated, SR.LoadsRemoved,
              SR.StoresRemoved, printKernel(K).c_str());
  if (!check(Original, K, "scalar replacement"))
    return 1;

  PeelingStats Peel = peelGuardedIterations(K);
  DataLayoutStats Layout = *applyDataLayout(K, {4});
  std::printf("(d) final code: %u loop(s) peeled, %u arrays distributed "
              "across memory banks\n%s",
              Peel.LoopsPeeled, Layout.ArraysDistributed,
              printKernel(K).c_str());
  if (!check(Original, K, "peeling + data layout"))
    return 1;

  std::printf("Compare with Figure 1(d) of the paper: even/odd elements "
              "of S and C in separate banks, D distributed likewise, "
              "rotating c-register chains, and a peeled first j "
              "iteration holding the chain loads.\n");
  return 0;
}
